//! Bounded exhaustive exploration of interleavings — a tiny model checker.
//!
//! For small systems (a handful of processes, a bounded number of steps) it
//! is feasible to enumerate *every* schedule and check a safety predicate in
//! every reachable configuration. This provides much stronger evidence than
//! randomized testing:
//!
//! * the paper's algorithms (Figures 3–5) are checked to satisfy Validity and
//!   k-Agreement in **all** interleavings of small configurations, and
//! * deliberately under-provisioned variants (fewer registers than the lower
//!   bounds allow) are shown to have *some* interleaving that violates
//!   k-agreement — an executable companion to the Theorem 2 argument.
//!
//! States are deduplicated by a collision-resistant 128-bit [`StateKey`]
//! over the automata, the raw memory contents and the decisions taken so
//! far, which keeps the search tractable well beyond naive schedule
//! enumeration without risking an unsound prune (see
//! [`Exploration::verified`]).
//!
//! This module is the serial depth-first explorer; its work-stealing
//! counterpart, which shares the [`StateKey`] dedup guarantee, lives in
//! [`parallel_explore`](crate::parallel_explore).

use crate::executor::Executor;
use crate::store::{
    decode_frontier_record, encode_frontier_record, read_segment, FrontierRecord, KeyTable,
    SegmentKind, SegmentWriter, SpillDir,
};
use sa_model::{independent, Automaton, IdRelabeling, InstanceId, Op, ProcessId, SymmetryClass};
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;

/// Whether an explorer deduplicates reachable configurations up to
/// process-id symmetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SymmetryMode {
    /// Every configuration is its own dedup key — the historical behavior.
    #[default]
    Off,
    /// Configurations are canonicalized up to process-id orbits before
    /// computing their [`StateKey`]: processes that the algorithm cannot
    /// distinguish may be relabeled, so one representative per orbit is
    /// explored.
    ///
    /// This is **requested**, not guaranteed: automata must opt in through
    /// [`Automaton::symmetry_class`], and a system whose automata report
    /// [`SymmetryClass::Opaque`] (or disable dedup) falls back to [`Off`]
    /// rather than prune unsoundly —
    /// [`Exploration::symmetry_applied`] records what actually happened.
    ProcessIds,
}

impl SymmetryMode {
    /// A stable label used by records and CLIs.
    pub fn label(&self) -> &'static str {
        match self {
            SymmetryMode::Off => "off",
            SymmetryMode::ProcessIds => "process-ids",
        }
    }

    /// Parses [`SymmetryMode::label`] output.
    pub fn parse(text: &str) -> Option<SymmetryMode> {
        match text {
            "off" => Some(SymmetryMode::Off),
            "process-ids" => Some(SymmetryMode::ProcessIds),
            _ => None,
        }
    }
}

/// Whether an explorer prunes commuting interleavings with sleep sets over
/// the static independence relation ([`sa_model::independent`]).
///
/// Sleep-set reduction visits **every** reachable state the plain search
/// visits — it only skips redundant *transitions* between them (the second
/// order of an independent pair), so `states_visited` and every safety
/// verdict are invariant while [`Exploration::expansions`] shrinks. It
/// composes multiplicatively with [`SymmetryMode`]: sleep masks are kept in
/// canonical process coordinates, making the combined search a sleep-set
/// traversal of the symmetry quotient graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReductionMode {
    /// Every enabled transition of every visited state is expanded — the
    /// historical behavior.
    #[default]
    Off,
    /// Per-configuration sleep sets: once a transition has been expanded
    /// from a state, sibling orders that commute with it are skipped.
    ///
    /// This is **requested**, not guaranteed: the masks are a dedup-map
    /// payload, so searches with dedup disabled (or more than 64 processes,
    /// the mask width) fall back to [`Off`] rather than prune unsoundly —
    /// [`Exploration::reduction_applied`] records what actually happened.
    SleepSets,
    /// Persistent-set selective search: each state expands only a
    /// provably sufficient subset of its enabled processes — a seed closed
    /// under the static dependency relation (see [`persistent_set`]) — so
    /// whole successor *states* are cut, not just redundant transitions.
    /// Subsumes [`SleepSets`]: sleep masks still prune the second order of
    /// commuting pairs within the persistent subset.
    ///
    /// The serial explorer pairs the selection with Flanagan–Godefroid
    /// dynamic backtracking: on discovering (while expanding a transition)
    /// a static dependency with an earlier transition of the DFS path, the
    /// stepping process is added to that ancestor's backtrack set, which
    /// re-establishes the persistent-set condition the cheap seed may have
    /// missed. The breadth-first explorer and the adversary search, which
    /// keep no path to backtrack over, apply the cut only at states where
    /// it is locally provable (every non-member halts after its poised
    /// op — see [`persistent_set_applies`]).
    ///
    /// Same fallback contract as [`SleepSets`]: dedup off or more than 64
    /// processes falls back to [`Off`].
    PersistentSets,
}

impl ReductionMode {
    /// A stable label used by records and CLIs.
    pub fn label(&self) -> &'static str {
        match self {
            ReductionMode::Off => "off",
            ReductionMode::SleepSets => "sleep-set",
            ReductionMode::PersistentSets => "persistent-set",
        }
    }

    /// Parses [`ReductionMode::label`] output.
    pub fn parse(text: &str) -> Option<ReductionMode> {
        match text {
            "off" => Some(ReductionMode::Off),
            "sleep-set" => Some(ReductionMode::SleepSets),
            "persistent-set" => Some(ReductionMode::PersistentSets),
            _ => None,
        }
    }
}

/// Configuration of a bounded exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Maximum number of steps along any single execution path.
    pub max_depth: u64,
    /// Maximum number of states to visit before giving up (truncation).
    /// A state space of **exactly** `max_states` states is exhausted, not
    /// truncated: truncation means the budget ran out while unexplored
    /// work remained.
    pub max_states: u64,
    /// Whether to deduplicate states (requires hashing each state; almost
    /// always worth it).
    pub dedup: bool,
    /// Whether to deduplicate up to process-id symmetry (requires `dedup`;
    /// falls back to [`SymmetryMode::Off`] for automata that do not opt
    /// in — see [`SymmetryMode::ProcessIds`]).
    pub symmetry: SymmetryMode,
    /// Whether to prune commuting interleavings with sleep sets (requires
    /// `dedup` and at most 64 processes; falls back to
    /// [`ReductionMode::Off`] otherwise — see [`ReductionMode::SleepSets`]).
    pub reduction: ReductionMode,
    /// Whether the explorer may spill frozen frontier chunks to disk when
    /// the resident frontier exceeds [`max_resident_bytes`](Self::max_resident_bytes).
    /// Spilled entries store only their schedule and orbit weight (the
    /// executor state is reconstructed by deterministic replay), so the
    /// search verdict and every statistic except
    /// [`Exploration::spilled_entries`] are identical with spill on or off.
    pub spill: bool,
    /// A budget, in estimated deep bytes ([`Executor::approx_deep_bytes`]),
    /// on the resident frontier. `0` means unlimited. When the budget is
    /// exceeded: with [`spill`](Self::spill) the explorer moves the coldest
    /// half of the frontier to disk and continues; without it the search
    /// deterministically truncates, preserving the pending count in
    /// [`Exploration::pending_at_exit`].
    pub max_resident_bytes: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_depth: 60,
            max_states: 2_000_000,
            dedup: true,
            symmetry: SymmetryMode::Off,
            reduction: ReductionMode::Off,
            spill: false,
            max_resident_bytes: 0,
        }
    }
}

impl ExploreConfig {
    /// A config with the given depth bound.
    pub fn with_depth(max_depth: u64) -> Self {
        ExploreConfig {
            max_depth,
            ..ExploreConfig::default()
        }
    }
}

/// A safety violation discovered by the explorer, together with the schedule
/// that exhibits it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploredViolation {
    /// The schedule (sequence of process ids) leading to the violation. An
    /// empty schedule means the **initial** configuration already violates
    /// the predicate.
    pub schedule: Vec<ProcessId>,
    /// A human-readable description produced by the predicate.
    pub description: String,
}

/// What [`Exploration::frontier_peak`] measures — the two explorers keep
/// fundamentally different frontiers, and the shared field name used to
/// silently conflate them (a DFS stack depth is *not* comparable to a BFS
/// level width when sizing a run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrontierSemantics {
    /// The serial [`explore`](crate::explore): the deepest pending DFS
    /// stack, counting in-memory and spilled entries alike.
    DfsStackDepth,
    /// [`parallel_explore`](crate::parallel_explore): the widest
    /// breadth-first level awaiting expansion.
    BfsLevelWidth,
}

impl FrontierSemantics {
    /// A stable label used by records and summaries.
    pub fn label(&self) -> &'static str {
        match self {
            FrontierSemantics::DfsStackDepth => "dfs-stack-depth",
            FrontierSemantics::BfsLevelWidth => "bfs-level-width",
        }
    }
}

/// The result of a bounded exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Number of states visited.
    pub states_visited: u64,
    /// Number of maximal paths (all-halted or depth-bounded) examined.
    pub paths: u64,
    /// The first violation found, if any.
    pub violation: Option<ExploredViolation>,
    /// `true` if the search stopped because a limit was hit rather than
    /// because the state space was exhausted.
    pub truncated: bool,
    /// The deepest schedule prefix (in steps) the search examined. With
    /// dedup on this is the longest *non-revisiting* path for the serial
    /// explorer, and the breadth-first radius of the explored state space
    /// for the parallel explorer — both can be far below `max_depth` even
    /// when the state space is exhausted.
    pub max_depth_reached: u64,
    /// Peak size of the frontier of states awaiting expansion; what a
    /// "frontier entry" *is* differs per backend — see
    /// [`frontier_semantics`](Self::frontier_semantics). Spilled entries
    /// count: the peak is a property of the search, not of where the
    /// entries happened to live.
    pub frontier_peak: u64,
    /// What [`frontier_peak`](Self::frontier_peak) measures for the backend
    /// that produced this report: the deepest DFS stack for the serial
    /// explorer, the widest BFS level for the parallel one.
    pub frontier_semantics: FrontierSemantics,
    /// States that were discovered but still awaiting expansion when the
    /// search stopped (0 when the space was exhausted). Together with
    /// [`states_visited`](Self::states_visited) this accounts for **every**
    /// discovered state: a truncated search loses nothing, which is what a
    /// checkpoint-resume needs. The pre-fix explorer silently discarded the
    /// state it had just popped when the budget ran out.
    pub pending_at_exit: u64,
    /// Entries held by the dedup seen-set when the search stopped (0 with
    /// dedup disabled).
    pub seen_entries: u64,
    /// A rough, deterministic estimate of the bytes held by the explorer's
    /// data structures at their peak: the deep size of the peak frontier
    /// (resident plus spilled, so the figure is spill-invariant) plus the
    /// final seen-set table. Deep means heap payloads — register contents,
    /// histories, decision maps — are charged per entry, not just the
    /// struct shells; the pre-fix shallow accounting under-reported
    /// history-heavy cells by an order of magnitude.
    pub approx_bytes: u64,
    /// Cumulative number of frontier entries written to disk (0 unless
    /// [`ExploreConfig::spill`] was on and the resident budget was
    /// exceeded). The only statistic that legitimately differs between a
    /// spilled and an in-core run of the same cell.
    pub spilled_entries: u64,
    /// `true` if the search deduplicated up to process-id symmetry:
    /// [`SymmetryMode::ProcessIds`] was requested **and** every automaton
    /// opted in (see [`Automaton::symmetry_class`]). When `false` despite a
    /// request, the search fell back to plain exploration — same verdicts,
    /// no reduction.
    pub symmetry_applied: bool,
    /// A lower bound on the number of distinct reachable configurations
    /// represented by the visited states: with symmetry applied, the sum
    /// over visited orbit representatives of the number of distinct
    /// configurations their input-preserving relabelings produce (every one
    /// of them reachable); without symmetry, exactly `states_visited`. The
    /// ratio `full_states_lower_bound / states_visited` is the reduction
    /// factor the quotient achieved. Exact up to 128-bit signature
    /// collisions between distinct slot states.
    pub full_states_lower_bound: u64,
    /// `true` if the search pruned commuting interleavings with sleep sets:
    /// [`ReductionMode::SleepSets`] was requested **and** its preconditions
    /// held (dedup on, at most 64 processes). When `false` despite a
    /// request, the search fell back to plain expansion — same verdicts, no
    /// transition reduction.
    pub reduction_applied: bool,
    /// Number of successor configurations generated (one per expanded
    /// transition). Sleep sets leave
    /// [`states_visited`](Self::states_visited) untouched and shrink
    /// **this** figure; the ratio `(expansions + sleep_pruned) / expansions`
    /// is the transition-level reduction factor achieved.
    pub expansions: u64,
    /// Number of enabled transitions skipped because they were asleep at a
    /// state's expansion (0 without [`ReductionMode::SleepSets`]).
    pub sleep_pruned: u64,
    /// Number of transitions expanded out of persistent/backtrack sets —
    /// i.e. from states where the persistent-set selection restricted the
    /// expansion (0 without [`ReductionMode::PersistentSets`]).
    pub persistent_expanded: u64,
    /// Number of enabled transitions the persistent-set selection left
    /// permanently unexpanded — each the root of a successor subtree the
    /// selective search proved redundant, which is how this mode cuts
    /// *states* rather than transitions (0 without
    /// [`ReductionMode::PersistentSets`]).
    pub states_cut: u64,
}

impl Exploration {
    /// `true` if no violation was found and the search was not truncated —
    /// i.e. the predicate holds in **every** reachable configuration within
    /// the depth bound.
    ///
    /// # Soundness
    ///
    /// Deduplication keys are 128-bit salted hashes of the **full** canonical
    /// state (every automaton, the raw register/snapshot contents and all
    /// decisions — see [`StateKey`]), so a reachable state is pruned only if
    /// a state with the same key was already expanded. A false `verified`
    /// therefore requires a 128-bit collision between two distinct reachable
    /// states (probability ≈ `s² / 2¹²⁹` for `s` states — below `10⁻²⁵` even
    /// at the default two-million-state budget), not a 64-bit one as in
    /// earlier releases.
    pub fn verified(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }
}

/// A collision-resistant dedup key: two independently salted 64-bit hashes
/// over the full canonical state.
///
/// The pre-fix explorer keyed its seen-set by a single 64-bit
/// `DefaultHasher` value, so one hash collision anywhere in a million-state
/// search (birthday probability ≈ `s² / 2⁶⁵`, i.e. one in ~10⁷ per cell —
/// material across whole campaigns) could unsoundly prune a reachable state
/// while still reporting `verified`. The widened key makes that probability
/// negligible; see [`Exploration::verified`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateKey([u64; 2]);

impl StateKey {
    /// Reassembles a key from [`parts`](Self::parts) output — used when
    /// keys round-trip through on-disk seen-set shards.
    pub fn from_parts(parts: [u64; 2]) -> StateKey {
        StateKey(parts)
    }

    /// The two independently salted halves of the key.
    pub fn parts(&self) -> [u64; 2] {
        self.0
    }

    /// The shard index this key belongs to when the seen-set is split into
    /// `shards` parts — a prefix of the first half, so keys spread evenly.
    pub fn shard(&self, shards: usize) -> usize {
        debug_assert!(shards.is_power_of_two(), "shard counts are powers of two");
        ((self.0[0] >> 48) as usize) & (shards - 1)
    }
}

/// Feeds one canonical-state stream into two differently salted
/// `DefaultHasher`s, producing both halves of a [`StateKey`] in one
/// traversal of the state.
struct SplitHasher {
    plain: std::collections::hash_map::DefaultHasher,
    salted: std::collections::hash_map::DefaultHasher,
}

impl SplitHasher {
    fn new() -> Self {
        let plain = std::collections::hash_map::DefaultHasher::new();
        let mut salted = std::collections::hash_map::DefaultHasher::new();
        // Any fixed non-trivial prefix decorrelates the two finishes; the
        // SplitMix64 increment is as good as any.
        salted.write_u64(0x9E37_79B9_7F4A_7C15);
        SplitHasher { plain, salted }
    }

    /// Consumes the hasher into the full 128-bit key. Deliberately not
    /// named `finish`: the `Hasher::finish` impl below yields only the
    /// unsalted half, and shadowing it would invite exactly the 64-bit-key
    /// bug this type exists to fix.
    fn into_key(self) -> StateKey {
        StateKey([self.plain.finish(), self.salted.finish()])
    }
}

impl Hasher for SplitHasher {
    fn write(&mut self, bytes: &[u8]) {
        self.plain.write(bytes);
        self.salted.write(bytes);
    }

    fn finish(&self) -> u64 {
        self.plain.finish()
    }
}

/// The dedup key of an executor configuration: automata, raw memory
/// contents and decisions, hashed into a [`StateKey`]. Shared by the serial
/// and the parallel explorer so their seen-sets agree on state identity.
pub fn state_key<A>(executor: &Executor<A>) -> StateKey
where
    A: Automaton + Hash,
    A::Value: Hash + Clone + Eq + Debug,
{
    let mut hasher = SplitHasher::new();
    for p in 0..executor.process_count() {
        executor.automaton(ProcessId(p)).hash(&mut hasher);
    }
    // Hash the raw contents, not `content_fingerprint()`: routing the state
    // through a 64-bit intermediate would cap the whole key at 64 bits of
    // collision resistance no matter how wide the final key is.
    executor.memory().hash_contents(&mut hasher);
    executor.decisions().hash(&mut hasher);
    hasher.into_key()
}

/// The precomputed symmetry structure of one exploration: whether reduction
/// applies at all, and which process slots may exchange positions during
/// canonicalization.
///
/// Built once per search from the **initial** configuration (see
/// [`SymmetryPlan::for_executor`]) and shared by the serial and the parallel
/// explorer, so their canonical keys agree exactly.
#[derive(Debug, Clone)]
pub struct SymmetryPlan {
    applied: bool,
    n: usize,
    /// The automata's declared class; id-carrying systems additionally sign
    /// slots with their memory-occurrence profile (see `canonical_order`).
    class: SymmetryClass,
    /// Canonical sorting domain per slot: slots may only exchange canonical
    /// positions with slots of the same domain. One domain for anonymous
    /// systems (full-group permutation); equal-initial-behavior domains for
    /// id-carrying systems (so the relabelings quotiented by are exactly
    /// those fixing the initial configuration).
    canon_class: Vec<usize>,
    /// Equal-initial-behavior class per slot, used by the orbit-size lower
    /// bound: relabelings within these classes fix the initial
    /// configuration, so every orbit member they produce is reachable.
    initial_class: Vec<usize>,
    /// The id-erasing map used for order-independent slot signatures.
    erase: IdRelabeling,
}

impl SymmetryPlan {
    /// A plan that applies no reduction.
    fn off(n: usize) -> SymmetryPlan {
        SymmetryPlan {
            applied: false,
            n,
            class: SymmetryClass::Opaque,
            canon_class: Vec::new(),
            initial_class: Vec::new(),
            erase: IdRelabeling::erase(n),
        }
    }

    /// Builds the plan for exploring from `initial` under `mode`.
    ///
    /// [`SymmetryMode::ProcessIds`] is **established** (rather than assumed)
    /// here: every automaton must report the same non-
    /// [`Opaque`](SymmetryClass::Opaque) [`Automaton::symmetry_class`],
    /// otherwise the plan falls back to no reduction — an unsound prune is
    /// worse than a slow search. Anonymous systems get one orbit group over
    /// all slots; id-carrying systems get one group per class of processes
    /// with identical (id-erased) initial behavior, i.e. identical inputs.
    pub fn for_executor<A>(initial: &Executor<A>, mode: SymmetryMode) -> SymmetryPlan
    where
        A: Automaton + Hash,
        A::Value: Hash + Clone + Eq + Debug,
    {
        let n = initial.process_count();
        if mode == SymmetryMode::Off || n == 0 {
            return SymmetryPlan::off(n);
        }
        let class = initial.automaton(ProcessId(0)).symmetry_class();
        if class == SymmetryClass::Opaque {
            return SymmetryPlan::off(n);
        }
        for p in 1..n {
            if initial.automaton(ProcessId(p)).symmetry_class() != class {
                return SymmetryPlan::off(n);
            }
        }
        let erase = IdRelabeling::erase(n);
        // Group slots by their id-erased initial behavior: for the paper's
        // algorithms this is exactly "identical input sequence".
        let signatures: Vec<StateKey> = (0..n)
            .map(|p| {
                let mut hasher = SplitHasher::new();
                initial
                    .automaton(ProcessId(p))
                    .hash_behavior(&erase, &mut hasher);
                hasher.into_key()
            })
            .collect();
        let mut initial_class = vec![0usize; n];
        let mut representatives: Vec<StateKey> = Vec::new();
        for p in 0..n {
            initial_class[p] = representatives
                .iter()
                .position(|sig| *sig == signatures[p])
                .unwrap_or_else(|| {
                    representatives.push(signatures[p]);
                    representatives.len() - 1
                });
        }
        let canon_class = match class {
            // Anonymous algorithms permit full-group permutation: nothing
            // in the transition system references a slot index.
            SymmetryClass::Anonymous => vec![0usize; n],
            // Id-carrying algorithms only within equal-input groups, where
            // the consistent relabeling fixes the initial configuration.
            SymmetryClass::IdCarrying => initial_class.clone(),
            SymmetryClass::Opaque => unreachable!("checked above"),
        };
        SymmetryPlan {
            applied: true,
            n,
            class,
            canon_class,
            initial_class,
            erase,
        }
    }

    /// `true` if this plan performs symmetry reduction.
    pub fn applied(&self) -> bool {
        self.applied
    }

    /// `true` if every orbit group is a single slot, so canonicalization is
    /// provably the identity and no two distinct configurations can ever
    /// merge — e.g. a distinct-workload cell of an id-carrying algorithm.
    /// The explorers use this to take the plain [`state_key`] fast path
    /// (same dedup semantics, none of the per-slot signature work) while
    /// still reporting the symmetry as applied.
    pub fn is_trivial(&self) -> bool {
        let groups = self.orbit_groups();
        groups == self.n && self.n > 0
    }

    /// The number of orbit groups canonicalization sorts within (`0` when
    /// the plan applies no reduction).
    pub fn orbit_groups(&self) -> usize {
        self.canon_class.iter().copied().max().map_or(0, |c| c + 1)
    }

    /// The canonical relabeling of `executor`'s configuration: a bijection
    /// `old id → new id` that, applied consistently to slots, local states,
    /// memory values and decisions, yields the orbit representative whose
    /// [`canonical_state_key`] is computed. The identity when the plan
    /// applies no reduction.
    pub fn canonical_relabeling<A>(&self, executor: &Executor<A>) -> IdRelabeling
    where
        A: Automaton + Hash,
        A::Value: Hash + Clone + Eq + Debug,
    {
        if !self.applied {
            return IdRelabeling::identity(self.n);
        }
        let (order, _) = self.canonical_order(executor);
        relabel_for_order(&order)
    }

    /// The canonical slot order (`order[new_slot] = old_slot`) plus the
    /// orbit-size lower bound of the configuration.
    ///
    /// Within each orbit group, slots are sorted by an id-erased signature
    /// of their behavioral state and per-slot decisions; ties keep original
    /// slot order, so the result is a deterministic function of the
    /// configuration alone (never of thread count or discovery order).
    fn canonical_order<A>(&self, executor: &Executor<A>) -> (Vec<usize>, u64)
    where
        A: Automaton + Hash,
        A::Value: Hash + Clone + Eq + Debug,
    {
        let n = self.n;
        let instances: Vec<InstanceId> = executor.decisions().instances().collect();
        let signatures: Vec<[u64; 2]> = (0..n)
            .map(|p| {
                let mut hasher = SplitHasher::new();
                executor
                    .automaton(ProcessId(p))
                    .hash_behavior(&self.erase, &mut hasher);
                // The slot's decisions travel with it under relabeling, so
                // they are part of what makes slots interchangeable.
                for &instance in &instances {
                    if let Some(value) = executor.decisions().decision_of(ProcessId(p), instance) {
                        instance.hash(&mut hasher);
                        value.hash(&mut hasher);
                    }
                }
                // Id-carrying values couple slots to memory: two slots whose
                // local states differ only in the id are still distinguished
                // by WHERE their ids occur in memory (e.g. only p1 has a
                // pair in the snapshot). Sign each slot with its
                // id-occurrence profile — every value hashed under a
                // "spotlight" map sending this slot's id to p1 and every
                // other id to p0 — so the canonical order separates them
                // consistently across the whole orbit. (Anonymous values
                // embed no ids; the profile would be constant, so skip it.)
                if self.class == SymmetryClass::IdCarrying && n > 1 {
                    let mut spotlight = vec![ProcessId(0); n];
                    spotlight[p] = ProcessId(1);
                    let spotlight = IdRelabeling::from_map(spotlight);
                    executor
                        .memory()
                        .hash_contents_mapped(&mut hasher, |value| {
                            A::relabel_value(value, &spotlight)
                        });
                }
                hasher.into_key().parts()
            })
            .collect();
        // Within each orbit group, reassign the group's slot positions to
        // its members in signature order (stable: ties keep slot order).
        let mut order: Vec<usize> = (0..n).collect();
        let groups = self.canon_class.iter().copied().max().map_or(0, |c| c + 1);
        for group in 0..groups {
            let positions: Vec<usize> = (0..n).filter(|p| self.canon_class[*p] == group).collect();
            let mut members = positions.clone();
            members.sort_by_key(|p| (signatures[*p], *p));
            for (position, member) in positions.into_iter().zip(members) {
                order[position] = member;
            }
        }
        // Orbit-size lower bound: within each equal-initial-behavior class,
        // relabelings fix the initial configuration, so they produce
        // class_size! / (product of equal-signature run lengths!) distinct
        // reachable configurations. Slots whose *projected* states collide
        // are conservatively treated as interchangeable, keeping this a
        // lower bound.
        let classes = self
            .initial_class
            .iter()
            .copied()
            .max()
            .map_or(0, |c| c + 1);
        let mut orbit_lower: u64 = 1;
        for class in 0..classes {
            let mut sigs: Vec<[u64; 2]> = (0..n)
                .filter(|p| self.initial_class[*p] == class)
                .map(|p| signatures[p])
                .collect();
            sigs.sort_unstable();
            let mut arrangements: u64 = factorial(sigs.len() as u64);
            let mut run = 1u64;
            for i in 1..=sigs.len() {
                if i < sigs.len() && sigs[i] == sigs[i - 1] {
                    run += 1;
                } else {
                    arrangements /= factorial(run);
                    run = 1;
                }
            }
            orbit_lower = orbit_lower.saturating_mul(arrangements);
        }
        (order, orbit_lower)
    }
}

/// `n!`, saturating — orbit groups are at most `n` slots wide, and a
/// saturated count still satisfies the "lower bound" contract because it is
/// only ever *divided* by factorials of run lengths that partition `n`.
fn factorial(n: u64) -> u64 {
    (2..=n).fold(1u64, |acc, i| acc.saturating_mul(i))
}

/// The symmetry-reduced dedup key of a configuration, plus the orbit-size
/// lower bound feeding [`Exploration::full_states_lower_bound`].
///
/// The key is the 128-bit [`StateKey`] of the configuration's **canonical
/// orbit representative**: slots are reordered within their orbit groups by
/// id-erased behavioral signature, then the automata
/// ([`Automaton::hash_behavior`]), the memory contents
/// ([`SimMemory::hash_contents_mapped`](sa_memory::SimMemory::hash_contents_mapped)
/// with [`Automaton::relabel_value`]) and the decisions are hashed under the
/// resulting relabeling. Two configurations share a key **only if** one is
/// the other's image under an orbit-group permutation applied consistently
/// through states, values and decisions (up to the same 128-bit collision
/// bound as plain [`state_key`]) — so pruning on this key is sound: the
/// pruned configuration's entire future is the relabeled image of an
/// explored one, with identical safety verdicts.
///
/// A plan that applies no reduction (a fallback for Opaque automata, or
/// [`SymmetryMode::Off`]) degrades gracefully to the plain [`state_key`]
/// with a singleton orbit weight.
pub fn canonical_state_key<A>(executor: &Executor<A>, plan: &SymmetryPlan) -> (StateKey, u64)
where
    A: Automaton + Hash,
    A::Value: Hash + Clone + Eq + Debug,
{
    if !plan.applied {
        // A fallback plan (Opaque automata, or `SymmetryMode::Off`) defines
        // no orbits: the canonical key degrades to the plain key with a
        // singleton orbit, so callers can use the two interchangeably.
        return (state_key(executor), 1);
    }
    let (order, orbit_lower) = plan.canonical_order(executor);
    let relabel = relabel_for_order(&order);
    (
        canonical_key_for_order(executor, &order, &relabel),
        orbit_lower,
    )
}

/// The canonical relabeling (`old id → new id`) induced by a canonical slot
/// order (`order[new_slot] = old_slot`).
fn relabel_for_order(order: &[usize]) -> IdRelabeling {
    let mut map = vec![ProcessId(0); order.len()];
    for (new_slot, &old_slot) in order.iter().enumerate() {
        map[old_slot] = ProcessId(new_slot);
    }
    IdRelabeling::from_map(map)
}

/// Hashes the orbit representative selected by `order`/`relabel` into its
/// [`StateKey`] — the shared tail of [`canonical_state_key`] and
/// [`keyed_relabeled`].
fn canonical_key_for_order<A>(
    executor: &Executor<A>,
    order: &[usize],
    relabel: &IdRelabeling,
) -> StateKey
where
    A: Automaton + Hash,
    A::Value: Hash + Clone + Eq + Debug,
{
    let mut hasher = SplitHasher::new();
    for &old_slot in order {
        executor
            .automaton(ProcessId(old_slot))
            .hash_behavior(relabel, &mut hasher);
    }
    executor
        .memory()
        .hash_contents_mapped(&mut hasher, |value| A::relabel_value(value, relabel));
    for instance in executor.decisions().instances() {
        instance.hash(&mut hasher);
        for (new_slot, &old_slot) in order.iter().enumerate() {
            if let Some(value) = executor
                .decisions()
                .decision_of(ProcessId(old_slot), instance)
            {
                new_slot.hash(&mut hasher);
                value.hash(&mut hasher);
            }
        }
    }
    hasher.into_key()
}

/// The dedup key (and visited-orbit weight) of a configuration under a
/// plan: [`canonical_state_key`] when the plan applies non-trivially, the
/// plain [`state_key`] (weight 1) otherwise. The single key function both
/// explorers share. Trivial plans (every orbit group a singleton, e.g. a
/// distinct-workload id-carrying cell) provably cannot merge anything, so
/// they skip the per-slot signature work entirely rather than pay n extra
/// memory hashes per state for a 1.0x reduction.
pub(crate) fn keyed<A>(executor: &Executor<A>, plan: &SymmetryPlan) -> (StateKey, u64)
where
    A: Automaton + Hash,
    A::Value: Hash + Clone + Eq + Debug,
{
    if plan.applied && !plan.is_trivial() {
        canonical_state_key(executor, plan)
    } else {
        (state_key(executor), 1)
    }
}

/// [`keyed`], additionally returning the canonical relabeling that maps the
/// configuration onto its orbit representative — what sleep-set reduction
/// needs to store its masks in **canonical** process coordinates, where
/// masks from different members of one orbit are comparable. The identity
/// when the plan applies no (or only trivial) reduction. One
/// `canonical_order` pass serves the key, the weight and the relabeling.
pub fn keyed_relabeled<A>(
    executor: &Executor<A>,
    plan: &SymmetryPlan,
) -> (StateKey, u64, IdRelabeling)
where
    A: Automaton + Hash,
    A::Value: Hash + Clone + Eq + Debug,
{
    if plan.applied && !plan.is_trivial() {
        let (order, orbit_lower) = plan.canonical_order(executor);
        let relabel = relabel_for_order(&order);
        let key = canonical_key_for_order(executor, &order, &relabel);
        (key, orbit_lower, relabel)
    } else {
        (
            state_key(executor),
            1,
            IdRelabeling::identity(executor.process_count()),
        )
    }
}

/// One process's bit in a `u64` process mask, checked: `None` for
/// `p.index() >= 64`. The single chokepoint every mask builder below goes
/// through — `1u64 << p.index()` alone is a masked shift in release builds,
/// so a 65th process would silently alias process 1 instead of triggering
/// the documented >64-process fallback.
pub fn checked_bit_of(process: ProcessId) -> Option<u64> {
    1u64.checked_shl(process.index() as u32)
}

/// The bit mask of a process set, checked: `None` if any process index is
/// outside the 64-bit mask width. Callers that have already established the
/// fallback precondition (`n <= 64`) use [`mask_of`].
pub fn checked_mask_of(processes: &[ProcessId]) -> Option<u64> {
    processes
        .iter()
        .try_fold(0u64, |mask, p| Some(mask | checked_bit_of(*p)?))
}

/// The bit mask of a process set. Sleep masks are `u64` bit sets indexed by
/// process slot — the reason sleep-set and persistent-set reduction fall
/// back to plain expansion beyond 64 processes.
///
/// # Panics
///
/// Panics if a process index is outside the mask width: the explorers gate
/// reduction on `n <= 64`, so an out-of-range index here is a bug, and the
/// pre-fix wrapping shift would have aliased process `p` with `p - 64` in
/// sleep/backtrack masks instead of failing. Use [`checked_mask_of`] when
/// the precondition is not already established.
pub fn mask_of(processes: &[ProcessId]) -> u64 {
    checked_mask_of(processes)
        .expect("process index outside the 64-bit mask width; reduction must fall back at n > 64")
}

/// The image of a process-set mask under a relabeling: bit `p` maps to bit
/// `relabel(p)` (used to store sleep masks in canonical coordinates).
///
/// # Panics
///
/// Panics if the relabeling maps a set bit outside the 64-bit mask width
/// (see [`mask_of`]).
pub fn relabel_mask(mask: u64, relabel: &IdRelabeling) -> u64 {
    let mut out = 0u64;
    let mut rest = mask;
    while rest != 0 {
        let p = rest.trailing_zeros() as usize;
        out |= checked_bit_of(relabel.apply(ProcessId(p)))
            .expect("relabeled process index outside the 64-bit mask width");
        rest &= rest - 1;
    }
    out
}

/// The preimage of a canonical-coordinate mask under a relabeling: bit `p`
/// is set iff bit `relabel(p)` is set in `mask`. Scanning the domain avoids
/// materializing the inverse map.
///
/// # Panics
///
/// Panics if the relabeling maps a domain slot outside the 64-bit mask
/// width (see [`mask_of`]).
pub fn unrelabel_mask(mask: u64, relabel: &IdRelabeling) -> u64 {
    let mut out = 0u64;
    for p in 0..relabel.len() {
        let image = checked_bit_of(relabel.apply(ProcessId(p)))
            .expect("relabeled process index outside the 64-bit mask width");
        if mask & image != 0 {
            out |= 1u64 << p;
        }
    }
    out
}

/// The sleep set inherited by the successor reached by stepping `process`
/// from `state`: the members of `sleep` whose poised operations commute with
/// the one `process` is about to perform (dependent members wake — their
/// orders with `process` are now distinguishable and must be explored).
///
/// Commutation is judged by a three-tier interference analysis, every tier
/// a pure (and, across the pair, symmetric) function of the configuration,
/// so reduced output stays byte-identical at any worker count:
///
/// 1. the static footprint relation ([`independent`]) — free, holds in
///    every state;
/// 2. the invisible-write refinement
///    ([`SimMemory::invisibly_independent`](sa_memory::SimMemory::invisibly_independent))
///    — a value comparison against the current contents;
/// 3. the dynamic commutation checker
///    ([`orders_commute`](crate::orders_commute)) — executes both orders
///    from this very configuration and keeps the pair asleep only if the
///    successors collapse to one state key. This is the precise state-local
///    diamond, so it also prunes pairs no footprint analysis can clear —
///    e.g. an update racing a scan whose caller's behavior is insensitive
///    to that one component.
///
/// Each tier is evaluated at exactly the state the pruning decision is made
/// from, which is what the sleep-set induction needs: a per-state diamond,
/// re-established here at every expansion. (Enabledness preservation, the
/// other diamond leg, is structural — stepping one process never disables
/// another in this model.)
///
/// Debug builds run the dynamic oracle on every pair the *cheap* tiers
/// retain: if either analysis ever called a non-commuting pair independent,
/// the very expansion that would prune unsoundly panics instead (see
/// [`check_commutation`](crate::check_commutation) for the standalone
/// campaign-level sweep). Tier 3 needs no audit — it is the oracle.
pub fn successor_sleep<A>(state: &Executor<A>, process: ProcessId, sleep: u64) -> u64
where
    A: Automaton + Clone + Hash,
    A::Value: Hash + Clone + Eq + Debug,
{
    if sleep == 0 {
        return 0;
    }
    let Some(op) = state.poised(process) else {
        return 0;
    };
    let mut kept = 0u64;
    let mut rest = sleep;
    while rest != 0 {
        let q = ProcessId(rest.trailing_zeros() as usize);
        rest &= rest - 1;
        // A sleeping process with no poised op cannot be judged; waking it
        // is always sound.
        let Some(other) = state.poised(q) else {
            continue;
        };
        if independent(&op, &other) || state.memory().invisibly_independent(&op, &other) {
            kept |= 1u64 << q.index();
            #[cfg(debug_assertions)]
            debug_assert_commutes(state, process, q);
        } else if crate::commutation::orders_commute(state, process, q) {
            kept |= 1u64 << q.index();
        }
    }
    kept
}

/// The persistent subset of `runnable` at `state`: seeded from the lowest-
/// indexed enabled process and closed under the **static** dependency
/// relation over poised operations — a process joins the set when its
/// poised op fails [`independent`] against any member's poised op, until a
/// fixpoint.
///
/// Static (footprint) independence holds in *every* state, so members'
/// pending operations stay independent of non-members' poised operations no
/// matter which non-members step in between — the part of the persistent-set
/// condition a state-conditional relation could not deliver. What the
/// closure cannot see is a non-member's *future* operations becoming
/// dependent after it steps; the two consumers each close that hole their
/// own way: the serial DFS with Flanagan–Godefroid dynamic backtracking
/// (the missed process is added to the ancestor's backtrack set the moment
/// the dependency materializes), the breadth-first engines by applying the
/// cut only where [`persistent_set_applies`] proves non-members have no
/// future operations at all.
///
/// A process with no poised op cannot conflict and never joins. The result
/// is a pure function of the configuration, so reduced output stays
/// byte-identical at any worker count.
pub fn persistent_set<A>(state: &Executor<A>, runnable: &[ProcessId]) -> u64
where
    A: Automaton,
    A::Value: Clone + Eq + Debug,
{
    let Some(seed) = runnable.first() else {
        return 0;
    };
    persistent_closure(state, runnable, *seed)
}

/// The static-dependency closure of `{seed}` over `runnable` — the engine
/// behind [`persistent_set`], with the seed chosen by the caller (the DFS
/// seeds from the lowest *non-sleeping* enabled process so a sleep-filtered
/// backtrack set never starts empty).
fn persistent_closure<A>(state: &Executor<A>, runnable: &[ProcessId], seed: ProcessId) -> u64
where
    A: Automaton,
    A::Value: Clone + Eq + Debug,
{
    let mut set = mask_of(&[seed]);
    loop {
        let mut grew = false;
        for q in runnable {
            let q_bit = mask_of(&[*q]);
            if set & q_bit != 0 {
                continue;
            }
            let Some(q_op) = state.poised(*q) else {
                continue;
            };
            let mut members = set;
            while members != 0 {
                let p = ProcessId(members.trailing_zeros() as usize);
                members &= members - 1;
                let Some(p_op) = state.poised(p) else {
                    continue;
                };
                if !independent(&p_op, &q_op) {
                    set |= q_bit;
                    grew = true;
                    break;
                }
            }
        }
        if !grew {
            return set;
        }
    }
}

/// `true` when expanding only `set` (a [`persistent_set`] result) from
/// `state` is sound *without* dynamic backtracking: every enabled process
/// outside the set halts after its poised operation. Then any sequence of
/// non-member steps consists solely of their poised ops — each statically
/// independent of every member op by the closure — so the set is persistent
/// by definition, with no future operation left to conflict. The
/// breadth-first explorer and the adversary search, which keep no DFS path
/// to hang backtrack sets on, gate their state cuts on exactly this check;
/// the serial DFS needs no gate because its backtracking re-adds whatever
/// a non-member's future turns out to need.
pub fn persistent_set_applies<A>(state: &Executor<A>, set: u64, runnable: &[ProcessId]) -> bool
where
    A: Automaton + Clone,
    A::Value: Clone + Eq + Debug,
{
    runnable.iter().all(|q| {
        if set & mask_of(&[*q]) != 0 {
            return true;
        }
        let mut stepped = state.clone();
        stepped.step(*q);
        stepped.automaton(*q).is_halted()
    })
}

/// Debug oracle behind [`successor_sleep`]: executes both orders of a pair
/// the interference analysis called independent and asserts identical
/// successor state keys.
#[cfg(debug_assertions)]
fn debug_assert_commutes<A>(state: &Executor<A>, a: ProcessId, b: ProcessId)
where
    A: Automaton + Clone + Hash,
    A::Value: Hash + Clone + Eq + Debug,
{
    debug_assert!(
        crate::commutation::orders_commute(state, a, b),
        "independent pair {a}/{b} does not commute — the interference analysis is unsound here"
    );
}

/// The deterministic deep-byte charge of one frontier entry: the executor's
/// [`deep size`](Executor::approx_deep_bytes) (struct shells **plus** heap
/// payloads — register contents, histories, decision maps) plus the schedule
/// vector and the entry's bookkeeping words.
///
/// The pre-fix `estimate_bytes` charged only `size_of::<Executor<A>>()` per
/// entry, blind to every heap allocation inside the state; a 4-process
/// repeated-agreement cell reported ~430 MB while actually allocating
/// ~3.8 GB. Length-based deep accounting keeps the figure a pure function
/// of the search (never of capacities or discovery order), so it stays
/// byte-identical across worker counts and spill modes.
pub(crate) fn entry_bytes<A: Automaton>(state: &Executor<A>, schedule_len: usize) -> u64 {
    state.approx_deep_bytes()
        + (std::mem::size_of::<Vec<ProcessId>>()
            + schedule_len * std::mem::size_of::<ProcessId>()
            + 2 * std::mem::size_of::<u64>()) as u64
}

/// Reconstructs the executor reached by `schedule` from `initial` by
/// deterministic replay — the reason spilled frontier records need to store
/// no automaton or memory bytes at all.
pub(crate) fn replay<A>(initial: &Executor<A>, schedule: &[ProcessId]) -> Executor<A>
where
    A: Automaton + Clone,
    A::Value: Clone + Eq + Debug,
{
    let mut state = initial.clone();
    for &process in schedule {
        state.step(process);
    }
    state
}

/// One pending entry of the serial DFS. States are kept in their *original*
/// labeling — canonical forms exist only inside the dedup keys — so witness
/// schedules replay on the caller's executor as-is.
struct DfsEntry<A: Automaton> {
    state: Executor<A>,
    schedule: Vec<ProcessId>,
    orbit_lower: u64,
    bytes: u64,
    /// The sleep set this entry arrived with, in its own (original) process
    /// labeling. Always 0 without sleep-set reduction.
    sleep: u64,
    /// `Some(owed)` marks a **revisit**: the state was already visited, but
    /// an arrival with a smaller sleep set found the stored mask promised
    /// too little — exactly the `owed` transitions must still be expanded.
    /// Revisits are not re-counted in `states_visited`.
    expand: Option<u64>,
}

/// The serial explorer's seen-set: a bare key table, or — under sleep-set
/// reduction — a map from key to the canonical-coordinate sleep mask the
/// state's expansion is accountable to (smaller mask ⇒ more transitions
/// covered). The map is only ever probed by key, never iterated, so the
/// std `HashMap`'s seeded hasher cannot leak nondeterminism into output.
enum Seen {
    Plain(KeyTable),
    Masked(HashMap<StateKey, u64>),
}

impl Seen {
    fn len(&self) -> u64 {
        match self {
            Seen::Plain(table) => table.len() as u64,
            Seen::Masked(map) => map.len() as u64,
        }
    }

    /// The deterministic byte charge of the seen structure: the key table
    /// for its entry count, plus one mask word per entry when masked.
    fn table_bytes(&self) -> u64 {
        let len = self.len();
        let masks = match self {
            Seen::Plain(_) => 0,
            Seen::Masked(_) => len * std::mem::size_of::<u64>() as u64,
        };
        KeyTable::bytes_for_len(len) + masks
    }
}

/// Exhaustively explores every interleaving of the executor's processes up to
/// the configured depth, checking `predicate` in every reachable
/// configuration — **including the initial one**.
///
/// The predicate receives the executor after each step and returns
/// `Some(description)` to report a violation (which stops the search) or
/// `None` if the configuration is acceptable.
pub fn explore<A, F>(initial: &Executor<A>, config: ExploreConfig, mut predicate: F) -> Exploration
where
    A: Automaton + Clone + Hash,
    A::Value: Hash + Clone + Eq + Debug,
    F: FnMut(&Executor<A>) -> Option<String>,
{
    // Persistent-set selective search restructures the DFS around a path
    // stack with per-frame backtrack sets; it lives in its own driver. The
    // fallback preconditions are the sleep-set ones (the masks share the
    // same dedup-map plumbing).
    let n = initial.process_count();
    if config.reduction == ReductionMode::PersistentSets
        && config.dedup
        && n > 0
        && n <= u64::BITS as usize
    {
        return explore_dpor(initial, config, predicate);
    }
    // Symmetry reduction needs the seen-set (it *is* a dedup strategy), so
    // dedup-off searches fall back to plain enumeration.
    let plan = SymmetryPlan::for_executor(
        initial,
        if config.dedup {
            config.symmetry
        } else {
            SymmetryMode::Off
        },
    );
    // Sleep masks live in the seen-map and in u64 bit sets, so reduction
    // falls back (mirroring the symmetry fallback) when dedup is off or the
    // system outgrows the mask width.
    let reduce = config.reduction == ReductionMode::SleepSets
        && config.dedup
        && n > 0
        && n <= u64::BITS as usize;
    let mut seen = if reduce {
        Seen::Masked(HashMap::new())
    } else {
        Seen::Plain(KeyTable::new())
    };
    let mut result = Exploration {
        states_visited: 0,
        paths: 0,
        violation: None,
        truncated: false,
        max_depth_reached: 0,
        frontier_peak: 0,
        frontier_semantics: FrontierSemantics::DfsStackDepth,
        pending_at_exit: 0,
        seen_entries: 0,
        approx_bytes: 0,
        spilled_entries: 0,
        symmetry_applied: plan.applied(),
        full_states_lower_bound: 0,
        reduction_applied: reduce,
        expansions: 0,
        sleep_pruned: 0,
        persistent_expanded: 0,
        states_cut: 0,
    };
    // The initial configuration is reachable (by the empty schedule): a
    // predicate that rejects it must be reported, not silently skipped.
    if let Some(description) = predicate(initial) {
        result.states_visited = 1;
        result.full_states_lower_bound = 1;
        result.violation = Some(ExploredViolation {
            schedule: Vec::new(),
            description,
        });
        return result;
    }
    let (initial_key, initial_orbit) = keyed(initial, &plan);
    let initial_bytes = entry_bytes(initial, 0);
    let mut stack: Vec<DfsEntry<A>> = vec![DfsEntry {
        state: initial.clone(),
        schedule: Vec::new(),
        orbit_lower: initial_orbit,
        bytes: initial_bytes,
        sleep: 0,
        expand: None,
    }];
    result.frontier_peak = 1;
    match &mut seen {
        Seen::Plain(table) => {
            if config.dedup {
                table.insert(initial_key);
            }
        }
        // The root arrives with the empty sleep set, whose canonical image
        // is itself.
        Seen::Masked(map) => {
            map.insert(initial_key, 0);
        }
    }
    // Byte accounting. `resident` tracks the deep bytes of in-memory
    // frontier entries (what the cap polices); `spilled_logical` the deep
    // bytes their spilled counterparts *would* occupy resident. Their sum —
    // whose peak feeds `approx_bytes` — is conserved by spilling and
    // reloading, so the reported figure is spill-invariant.
    let cap = config.max_resident_bytes;
    let mut resident: u64 = initial_bytes;
    let mut spilled_logical: u64 = 0;
    let mut logical_peak: u64 = resident;
    // Spilled chunks form a LIFO of sealed segment files: the most recently
    // frozen chunk is the deepest part of the stack, so it reloads first,
    // preserving exact DFS order (and therefore every verdict and
    // statistic) across spill boundaries.
    let mut spill_dir: Option<SpillDir> = None;
    let mut segments: Vec<(PathBuf, u64)> = Vec::new();
    let mut spilled_pending: u64 = 0;
    let mut spill_seq: u64 = 0;
    loop {
        // Budget first, pop second: running out of budget must leave every
        // pending state *pending* (counted in `pending_at_exit`, resumable
        // from a checkpoint) — the pre-fix code popped first and silently
        // discarded the popped state on truncation. Visiting exactly
        // `max_states` states and then finding no pending work is still an
        // exhausted search, not a truncated one.
        if result.states_visited >= config.max_states {
            let pending = stack.len() as u64 + spilled_pending;
            if pending > 0 {
                result.truncated = true;
                result.pending_at_exit = pending;
            }
            break;
        }
        // A resident-byte budget without spill is a deterministic
        // truncation — same accounting as exhausting the state budget.
        if cap > 0 && !config.spill && resident > cap {
            result.truncated = true;
            result.pending_at_exit = stack.len() as u64 + spilled_pending;
            break;
        }
        let Some(entry) = stack.pop() else {
            if spilled_pending == 0 {
                break;
            }
            // Resident stack drained: thaw the most recently spilled chunk.
            // Records were frozen bottom-to-top, so pushing them back in
            // file order restores their exact relative order.
            let (path, count) = segments.pop().expect("spilled work implies a segment");
            let (_tag, records) = read_segment(&path, SegmentKind::FrontierLevel)
                .expect("reading back a spilled frontier segment");
            let _ = std::fs::remove_file(&path);
            debug_assert_eq!(records.len() as u64, count);
            for record in &records {
                let frozen = decode_frontier_record(record, initial.process_count())
                    .expect("decoding a spilled frontier record");
                let state = replay(initial, &frozen.schedule);
                let bytes = entry_bytes(&state, frozen.schedule.len());
                resident += bytes;
                spilled_logical = spilled_logical.saturating_sub(bytes);
                stack.push(DfsEntry {
                    state,
                    schedule: frozen.schedule,
                    orbit_lower: frozen.orbit_lower,
                    bytes,
                    sleep: frozen.sleep,
                    expand: frozen.expand,
                });
            }
            spilled_pending -= count;
            continue;
        };
        let DfsEntry {
            state,
            schedule,
            orbit_lower,
            bytes,
            sleep,
            expand,
        } = entry;
        resident -= bytes;
        let is_revisit = expand.is_some();
        if !is_revisit {
            result.states_visited += 1;
            result.full_states_lower_bound =
                result.full_states_lower_bound.saturating_add(orbit_lower);
            result.max_depth_reached = result.max_depth_reached.max(schedule.len() as u64);
        }
        let runnable = state.runnable();
        if runnable.is_empty() || schedule.len() as u64 >= config.max_depth {
            if !runnable.is_empty() {
                // Depth bound cut this path short.
                result.truncated = true;
            }
            if !is_revisit {
                result.paths += 1;
            }
            continue;
        }
        // Fresh entries expand everything enabled outside their sleep set;
        // revisits expand exactly the transitions the stored mask still
        // owed when they were pushed. (Enabledness is monotone — a process
        // stays enabled until it steps — so sleeping and owed processes are
        // always still runnable here.)
        let runnable_mask = mask_of(&runnable);
        let targets = match expand {
            Some(owed) => owed,
            None => runnable_mask & !sleep,
        };
        if reduce && !is_revisit {
            result.sleep_pruned += (sleep & runnable_mask).count_ones() as u64;
        }
        let mut sleep_cur = sleep;
        for process in runnable {
            let bit = 1u64 << process.index();
            if targets & bit == 0 {
                continue;
            }
            result.expansions += 1;
            let mut next = state.clone();
            next.step(process);
            let mut next_schedule = schedule.clone();
            next_schedule.push(process);
            if let Some(description) = predicate(&next) {
                result.max_depth_reached = result.max_depth_reached.max(next_schedule.len() as u64);
                result.violation = Some(ExploredViolation {
                    schedule: next_schedule,
                    description,
                });
                result.seen_entries = seen.len();
                result.approx_bytes = logical_peak + seen_table_bytes(config, &seen);
                return result;
            }
            // The successor sleeps on every still-independent member of the
            // *current* sleep set — which grows by each transition expanded
            // from this state, so later siblings sleep on earlier ones.
            let child_sleep = if reduce {
                successor_sleep(&state, process, sleep_cur)
            } else {
                0
            };
            match &mut seen {
                Seen::Plain(table) => {
                    let mut next_orbit = 1;
                    if config.dedup {
                        let (key, orbit) = keyed(&next, &plan);
                        if !table.insert(key) {
                            // Plain keys: an identical state was expanded.
                            // Canonical keys: a configuration whose entire
                            // future is the consistently relabeled image of
                            // an expanded one — same verdicts, so pruning
                            // it is sound.
                            continue;
                        }
                        next_orbit = orbit;
                    }
                    let next_bytes = entry_bytes(&next, next_schedule.len());
                    resident += next_bytes;
                    stack.push(DfsEntry {
                        state: next,
                        schedule: next_schedule,
                        orbit_lower: next_orbit,
                        bytes: next_bytes,
                        sleep: 0,
                        expand: None,
                    });
                }
                Seen::Masked(map) => {
                    // Masks are stored in canonical coordinates so arrivals
                    // from different orbit members are comparable; the
                    // entry keeps its own labeling, converting back on the
                    // way out.
                    let (key, orbit, relabel) = keyed_relabeled(&next, &plan);
                    let canon_sleep = relabel_mask(child_sleep, &relabel);
                    let push = match map.entry(key) {
                        std::collections::hash_map::Entry::Vacant(vacant) => {
                            vacant.insert(canon_sleep);
                            Some((orbit, None))
                        }
                        std::collections::hash_map::Entry::Occupied(mut occupied) => {
                            // The state was visited with stored mask M: its
                            // expansion covered enabled∖M. This arrival
                            // needs enabled∖Z — anything in M∖Z is still
                            // owed, so push a revisit for exactly that and
                            // shrink the stored promise to M∩Z.
                            let stored = *occupied.get();
                            let owed = stored & !canon_sleep;
                            if owed == 0 {
                                None
                            } else {
                                occupied.insert(stored & canon_sleep);
                                Some((0, Some(unrelabel_mask(owed, &relabel))))
                            }
                        }
                    };
                    if let Some((next_orbit, next_expand)) = push {
                        let next_bytes = entry_bytes(&next, next_schedule.len());
                        resident += next_bytes;
                        stack.push(DfsEntry {
                            state: next,
                            schedule: next_schedule,
                            orbit_lower: next_orbit,
                            bytes: next_bytes,
                            sleep: child_sleep,
                            expand: next_expand,
                        });
                    }
                }
            }
            // The transition was expanded (or its target's coverage is
            // promised elsewhere): later siblings may sleep on it.
            sleep_cur |= bit;
        }
        result.frontier_peak = result
            .frontier_peak
            .max(stack.len() as u64 + spilled_pending);
        logical_peak = logical_peak.max(resident + spilled_logical);
        // Over budget with spill enabled: freeze the *bottom* half of the
        // stack (the coldest entries — DFS will not revisit them until
        // everything above is done) into a sealed segment of
        // (schedule, orbit) records. No executor bytes hit the disk; thawed
        // entries are rebuilt by replay.
        if config.spill && cap > 0 && resident > cap && stack.len() >= 2 {
            let dir = match &spill_dir {
                Some(dir) => dir,
                None => {
                    spill_dir = Some(SpillDir::fresh().expect("creating the spill directory"));
                    spill_dir.as_ref().expect("just created")
                }
            };
            let path = dir.file(&format!("frontier-{spill_seq:08}.seg"));
            let mut writer = SegmentWriter::create(&path, SegmentKind::FrontierLevel, spill_seq)
                .expect("creating a frontier spill segment");
            spill_seq += 1;
            let half = stack.len() / 2;
            for entry in stack.drain(..half) {
                writer
                    .append(&encode_frontier_record(&FrontierRecord {
                        schedule: entry.schedule,
                        orbit_lower: entry.orbit_lower,
                        sleep: entry.sleep,
                        expand: entry.expand,
                        backtrack: 0,
                        done: 0,
                    }))
                    .expect("writing a frontier spill record");
                resident -= entry.bytes;
                spilled_logical += entry.bytes;
            }
            writer.finish().expect("sealing a frontier spill segment");
            segments.push((path, half as u64));
            spilled_pending += half as u64;
            result.spilled_entries += half as u64;
        }
    }
    if !plan.applied() {
        // Without symmetry every visited state is its own orbit.
        result.full_states_lower_bound = result.states_visited;
    }
    result.seen_entries = seen.len();
    result.approx_bytes = logical_peak + seen_table_bytes(config, &seen);
    result
}

/// One frame of the persistent-set DFS path stack. Unlike [`DfsEntry`]
/// (siblings coexist on the stack), the stack here *is* the current
/// schedule: frame `i` holds the state reached by the first `i` steps, and
/// expands one transition at a time from its backtrack set, so
/// Flanagan–Godefroid race detection can add processes to an ancestor's
/// `backtrack` **after** the ancestor was first expanded.
struct DporFrame<A: Automaton> {
    /// `None` while the frame is frozen in a spill segment; rebuilt by
    /// replay on thaw. The masks below stay resident so race additions can
    /// target frozen frames without touching disk.
    state: Option<Executor<A>>,
    schedule: Vec<ProcessId>,
    /// The operation most recently executed *from* this frame along the
    /// current path — the anchor races are detected against.
    taken_op: Option<Op<A::Value>>,
    /// The process that executed `taken_op`.
    taken: ProcessId,
    bytes: u64,
    /// Enabled processes at this frame, in its own labeling.
    runnable_mask: u64,
    /// The sleep set this frame arrived with (own labeling).
    sleep: u64,
    /// Processes promised an expansion: the sleep-filtered persistent set at
    /// creation, grown by dynamic backtracking when a deeper transition
    /// races with an op outside it.
    backtrack: u64,
    /// Processes already expanded from this frame.
    done: u64,
    /// `false` for owed-revisit frames, which re-expand transitions a
    /// smaller-sleep arrival found uncovered and are not re-counted.
    fresh: bool,
    /// Canonical dedup key and the relabeling that produced it, kept so
    /// backtrack growth can shrink the stored promise mask in canonical
    /// coordinates.
    key: StateKey,
    relabel: IdRelabeling,
}

/// The serial persistent-set explorer: a path-stack DFS with
/// Flanagan–Godefroid dynamic backtracking, dispatched to by [`explore`]
/// under [`ReductionMode::PersistentSets`] (dedup on, ≤ 64 processes).
///
/// Each fresh state's initial backtrack set is the sleep-filtered
/// [static persistent set](persistent_set); whenever a newly generated
/// transition's op is *dependent* with the op an ancestor frame executed,
/// the new process is added to that ancestor's backtrack set — re-adding
/// exactly the schedules the static closure could not prove redundant.
/// Dedup uses the sleep-set promise discipline: the stored mask per
/// canonical key is the set of enabled transitions **not** promised an
/// expansion (it shrinks as backtrack sets grow), and an arrival whose
/// sleep set leaves part of the stored mask uncovered pushes an owed
/// revisit for exactly that part. Race detection also runs for dedup-pruned
/// successors, so promises made by a pruned subtree's representative are
/// tightened the moment a race is visible at the prune point.
///
/// All decisions are pure functions of the configuration, and every
/// statistic is accounted at frame creation or completion — never at spill
/// boundaries — so output is byte-identical with spill on or off.
fn explore_dpor<A, F>(initial: &Executor<A>, config: ExploreConfig, mut predicate: F) -> Exploration
where
    A: Automaton + Clone + Hash,
    A::Value: Hash + Clone + Eq + Debug,
    F: FnMut(&Executor<A>) -> Option<String>,
{
    let plan = SymmetryPlan::for_executor(initial, config.symmetry);
    let mut result = Exploration {
        states_visited: 0,
        paths: 0,
        violation: None,
        truncated: false,
        max_depth_reached: 0,
        frontier_peak: 0,
        frontier_semantics: FrontierSemantics::DfsStackDepth,
        pending_at_exit: 0,
        seen_entries: 0,
        approx_bytes: 0,
        spilled_entries: 0,
        symmetry_applied: plan.applied(),
        full_states_lower_bound: 0,
        reduction_applied: true,
        expansions: 0,
        sleep_pruned: 0,
        persistent_expanded: 0,
        states_cut: 0,
    };
    if let Some(description) = predicate(initial) {
        result.states_visited = 1;
        result.full_states_lower_bound = 1;
        result.violation = Some(ExploredViolation {
            schedule: Vec::new(),
            description,
        });
        return result;
    }
    // Seen-map: canonical key → mask of enabled transitions NOT promised an
    // expansion (canonical coordinates). Same discipline as the sleep-set
    // explorer, except promises also shrink when backtracking grows.
    let mut map: HashMap<StateKey, u64> = HashMap::new();
    let mut frames: Vec<DporFrame<A>> = Vec::new();
    // Byte accounting mirrors `explore`: resident + spilled_logical is
    // conserved by freezing/thawing, so `approx_bytes` is spill-invariant.
    let cap = config.max_resident_bytes;
    let mut resident: u64 = 0;
    let mut spilled_logical: u64 = 0;
    let mut logical_peak: u64 = 0;
    let mut spill_dir: Option<SpillDir> = None;
    // Each segment freezes the frames `[start, start + count)` of the path
    // stack — always the coldest prefix of the still-resident frames — and
    // thaws only once the DFS has popped back down to its top frame.
    let mut segments: Vec<(PathBuf, usize, usize)> = Vec::new();
    let mut spill_seq: u64 = 0;
    let mut frozen_below: usize = 0;

    // Creates (and accounts) a frame for `state` reached by `schedule`,
    // arriving with `sleep`; `owed` is `Some(mask)` for revisit frames.
    // Returns the frame; the caller pushes it.
    let make_frame = |state: Executor<A>,
                      schedule: Vec<ProcessId>,
                      sleep: u64,
                      owed: Option<u64>,
                      key: StateKey,
                      orbit: u64,
                      relabel: IdRelabeling,
                      result: &mut Exploration,
                      map: &mut HashMap<StateKey, u64>|
     -> DporFrame<A> {
        let runnable = state.runnable();
        let runnable_mask = mask_of(&runnable);
        let fresh = owed.is_none();
        if fresh {
            result.states_visited += 1;
            result.full_states_lower_bound = result.full_states_lower_bound.saturating_add(orbit);
            result.max_depth_reached = result.max_depth_reached.max(schedule.len() as u64);
            result.sleep_pruned += (sleep & runnable_mask).count_ones() as u64;
        }
        let backtrack = match owed {
            Some(owed) => owed,
            None if schedule.len() as u64 >= config.max_depth => 0,
            None => {
                // Seed from the lowest non-sleeping enabled process; the
                // closure still ranges over everything enabled, but sleeping
                // members are filtered out of the promise (their coverage is
                // owned by the path that put them to sleep).
                let seeded = runnable
                    .iter()
                    .find(|q| sleep & mask_of(&[**q]) == 0)
                    .map(|seed| persistent_closure(&state, &runnable, *seed))
                    .unwrap_or(0);
                seeded & !sleep
            }
        };
        if fresh {
            // Promise: everything enabled outside the (sleep-filtered)
            // backtrack set is *not* covered here. Sleeping transitions are
            // never promised (mirroring the sleep-set explorer's stored Z).
            map.insert(key, relabel_mask(runnable_mask & !backtrack, &relabel));
        }
        let bytes = entry_bytes(&state, schedule.len());
        DporFrame {
            state: Some(state),
            schedule,
            taken_op: None,
            taken: ProcessId(0),
            bytes,
            runnable_mask,
            sleep,
            backtrack,
            done: 0,
            fresh,
            key,
            relabel,
        }
    };

    let (root_key, root_orbit, root_relabel) = keyed_relabeled(initial, &plan);
    let root = make_frame(
        initial.clone(),
        Vec::new(),
        0,
        None,
        root_key,
        root_orbit,
        root_relabel,
        &mut result,
        &mut map,
    );
    resident += root.bytes;
    logical_peak = logical_peak.max(resident);
    frames.push(root);
    result.frontier_peak = 1;

    loop {
        if cap > 0 && !config.spill && resident > cap {
            result.truncated = true;
            result.pending_at_exit =
                frames.iter().filter(|f| f.backtrack & !f.done != 0).count() as u64;
            break;
        }
        let Some(top) = frames.len().checked_sub(1) else {
            break;
        };
        if frames[top].state.is_none() {
            // The DFS popped back down into a frozen range: thaw the most
            // recently sealed segment (it covers exactly the frames up to
            // and including the current top) and rebuild states by replay.
            let (path, start, count) = segments.pop().expect("frozen frame implies a segment");
            debug_assert_eq!(start + count, frames.len());
            let (_tag, records) = read_segment(&path, SegmentKind::FrontierLevel)
                .expect("reading back a spilled DPOR segment");
            let _ = std::fs::remove_file(&path);
            debug_assert_eq!(records.len(), count);
            for (offset, record) in records.iter().enumerate() {
                let frozen = decode_frontier_record(record, initial.process_count())
                    .expect("decoding a spilled DPOR record");
                let frame = &mut frames[start + offset];
                // Resident masks are authoritative — they may have grown by
                // race additions since the freeze — so merge by union.
                frame.backtrack |= frozen.backtrack;
                frame.done |= frozen.done;
                let state = replay(initial, &frozen.schedule);
                resident += frame.bytes;
                spilled_logical = spilled_logical.saturating_sub(frame.bytes);
                frame.schedule = frozen.schedule;
                frame.state = Some(state);
            }
            frozen_below = segments.last().map_or(0, |(_, s, c)| s + c);
            continue;
        }
        let todo = frames[top].backtrack & !frames[top].done;
        if todo == 0 {
            let frame = frames.pop().expect("top frame exists");
            resident -= frame.bytes;
            if frame.fresh {
                let at_bound = frame.schedule.len() as u64 >= config.max_depth;
                if frame.runnable_mask == 0 || at_bound {
                    result.paths += 1;
                    if frame.runnable_mask != 0 {
                        result.truncated = true;
                    }
                } else {
                    // Enabled, unslept, never expanded: the roots of the
                    // subtrees the persistent set proved redundant.
                    result.states_cut +=
                        (frame.runnable_mask & !frame.done & !frame.sleep).count_ones() as u64;
                }
            }
            continue;
        }
        let bit = todo & todo.wrapping_neg();
        let process = ProcessId(bit.trailing_zeros() as usize);
        frames[top].done |= bit;
        if frames[top].sleep & bit != 0 {
            // A race addition may name a sleeping process; its orders are
            // covered by the path that put it to sleep.
            continue;
        }
        let state = frames[top].state.as_ref().expect("top frame is thawed");
        let taken_op = state.poised(process);
        let mut next = state.clone();
        next.step(process);
        let mut next_schedule = frames[top].schedule.clone();
        next_schedule.push(process);
        frames[top].taken_op = taken_op;
        frames[top].taken = process;
        result.expansions += 1;
        result.persistent_expanded += 1;
        if let Some(description) = predicate(&next) {
            result.max_depth_reached = result.max_depth_reached.max(next_schedule.len() as u64);
            result.violation = Some(ExploredViolation {
                schedule: next_schedule,
                description,
            });
            result.seen_entries = map.len() as u64;
            result.approx_bytes = logical_peak
                + KeyTable::bytes_for_len(map.len() as u64)
                + map.len() as u64 * std::mem::size_of::<u64>() as u64;
            return result;
        }
        // Flanagan–Godefroid race detection, run for EVERY generated
        // successor (pushed or dedup-pruned): each process enabled at the
        // successor is raced against the ops executed along the current
        // path — frame `top`'s op is the one just taken. The *last*
        // dependent frame gains the process in its backtrack set. No
        // happens-before check beyond program order is attempted (skipping
        // one only errs toward more exploration), and program order needs
        // no explicit test: if `q`'s own last op is dependent with its next
        // one, the frame that executed it has `q` in `done` and the scan
        // stops there; if independent (a no-op prelude, say), the scan
        // correctly ranges past it to older conflicting frames.
        let next_runnable = next.runnable();
        for q in &next_runnable {
            let q_bit = mask_of(&[*q]);
            let q_op = next.poised(*q);
            for j in (0..frames.len()).rev() {
                // An op we cannot judge is treated as dependent.
                let dependent = match (&frames[j].taken_op, &q_op) {
                    (Some(t), Some(o)) => !independent(t, o),
                    _ => true,
                };
                if !dependent {
                    continue;
                }
                if frames[j].backtrack & q_bit == 0
                    && frames[j].done & q_bit == 0
                    && frames[j].sleep & q_bit == 0
                {
                    debug_assert!(
                        frames[j].runnable_mask & q_bit != 0,
                        "enabledness is monotone: a process enabled deeper is enabled here"
                    );
                    frames[j].backtrack |= q_bit;
                    // The frame now promises this transition too.
                    if let Some(stored) = map.get_mut(&frames[j].key) {
                        *stored &= !relabel_mask(q_bit, &frames[j].relabel);
                    }
                }
                break;
            }
        }
        let (key, orbit, relabel) = keyed_relabeled(&next, &plan);
        // The successor sleeps on still-independent previously expanded
        // siblings (done ∖ {bit}) and inherited sleepers, exactly as in the
        // sleep-set explorer.
        let sibling_base = frames[top].sleep | (frames[top].done & !bit);
        let state = frames[top].state.as_ref().expect("top frame is thawed");
        let child_sleep = successor_sleep(state, process, sibling_base);
        let canon_sleep = relabel_mask(child_sleep, &relabel);
        let push = match map.entry(key) {
            std::collections::hash_map::Entry::Vacant(_) => {
                // Budget check exactly where a new state would be counted:
                // a space of exactly `max_states` states drains every
                // backtrack set and exits exhausted, not truncated.
                if result.states_visited >= config.max_states {
                    result.truncated = true;
                    result.pending_at_exit =
                        frames.iter().filter(|f| f.backtrack & !f.done != 0).count() as u64 + 1;
                    break;
                }
                Some(None)
            }
            std::collections::hash_map::Entry::Occupied(mut occupied) => {
                let stored = *occupied.get();
                let owed = stored & !canon_sleep;
                if owed == 0 {
                    None
                } else {
                    occupied.insert(stored & canon_sleep);
                    Some(Some(unrelabel_mask(owed, &relabel)))
                }
            }
        };
        if let Some(owed) = push {
            let frame = make_frame(
                next,
                next_schedule,
                child_sleep,
                owed,
                key,
                orbit,
                relabel,
                &mut result,
                &mut map,
            );
            resident += frame.bytes;
            frames.push(frame);
        }
        result.frontier_peak = result.frontier_peak.max(frames.len() as u64);
        logical_peak = logical_peak.max(resident + spilled_logical);
        // Over the resident cap with spill on: freeze the coldest half of
        // the still-resident frames (never the top — it is about to be
        // expanded). Masks stay resident so race additions keep working;
        // only the executor and schedule bytes leave memory.
        if config.spill && cap > 0 && resident > cap {
            let live = frames.len() - frozen_below;
            if live >= 2 {
                let dir = match &spill_dir {
                    Some(dir) => dir,
                    None => {
                        spill_dir = Some(SpillDir::fresh().expect("creating the spill directory"));
                        spill_dir.as_ref().expect("just created")
                    }
                };
                let path = dir.file(&format!("dpor-{spill_seq:08}.seg"));
                let mut writer =
                    SegmentWriter::create(&path, SegmentKind::FrontierLevel, spill_seq)
                        .expect("creating a DPOR spill segment");
                spill_seq += 1;
                let start = frozen_below;
                let count = live / 2;
                for frame in &mut frames[start..start + count] {
                    writer
                        .append(&encode_frontier_record(&FrontierRecord {
                            schedule: std::mem::take(&mut frame.schedule),
                            orbit_lower: 0,
                            sleep: frame.sleep,
                            // The flagged mask doubles as the fresh/revisit
                            // marker across the spill boundary.
                            expand: (!frame.fresh).then_some(0),
                            backtrack: frame.backtrack,
                            done: frame.done,
                        }))
                        .expect("writing a DPOR spill record");
                    frame.state = None;
                    resident -= frame.bytes;
                    spilled_logical += frame.bytes;
                }
                writer.finish().expect("sealing a DPOR spill segment");
                segments.push((path, start, count));
                frozen_below = start + count;
                result.spilled_entries += count as u64;
            }
        }
    }
    if !plan.applied() {
        result.full_states_lower_bound = result.states_visited;
    }
    result.seen_entries = map.len() as u64;
    result.approx_bytes = logical_peak
        + KeyTable::bytes_for_len(map.len() as u64)
        + map.len() as u64 * std::mem::size_of::<u64>() as u64;
    result
}

/// The deterministic byte charge of the seen-set (0 with dedup off — no
/// keys are stored). Computed from the entry count alone so the figure
/// never depends on capacities or insertion order.
fn seen_table_bytes(config: ExploreConfig, seen: &Seen) -> u64 {
    if config.dedup {
        seen.table_bytes()
    } else {
        0
    }
}

/// Convenience predicate: fail whenever more than `k` distinct values have
/// been decided in any instance (the k-Agreement safety property).
///
/// The closure is `Fn + Sync`, so one definition serves both [`explore`]
/// (which accepts any `FnMut`) and
/// [`parallel_explore`](crate::parallel_explore).
pub fn agreement_predicate<A>(k: usize) -> impl Fn(&Executor<A>) -> Option<String> + Sync
where
    A: Automaton,
    A::Value: Clone + Eq + Debug,
{
    move |executor: &Executor<A>| {
        for instance in executor.decisions().instances() {
            let outputs = executor.decisions().outputs(instance);
            if outputs.len() > k {
                return Some(format!(
                    "instance {instance} has {} distinct outputs {:?}, exceeding k = {k}",
                    outputs.len(),
                    outputs
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{RacyConsensus, ToyWriter};

    #[test]
    fn explorer_verifies_trivially_safe_system() {
        // Two independent writers can never violate 2-agreement.
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let result = explore(&exec, ExploreConfig::default(), agreement_predicate(2));
        assert!(result.verified(), "unexpected result: {result:?}");
        assert!(result.states_visited > 0);
    }

    #[test]
    fn explorer_finds_the_racy_interleaving() {
        // RacyConsensus violates 1-agreement only when both processes read
        // before either writes; the explorer must find that schedule.
        let exec = Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 10),
            RacyConsensus::new(ProcessId(1), 20),
        ]);
        let result = explore(&exec, ExploreConfig::default(), agreement_predicate(1));
        let violation = result.violation.expect("the race must be found");
        assert!(violation.description.contains("exceeding k = 1"));
        // The violating schedule necessarily lets both processes read first.
        assert!(violation.schedule.len() >= 3);
    }

    #[test]
    fn racy_consensus_satisfies_two_agreement() {
        let exec = Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 10),
            RacyConsensus::new(ProcessId(1), 20),
        ]);
        let result = explore(&exec, ExploreConfig::default(), agreement_predicate(2));
        assert!(result.verified());
    }

    #[test]
    fn explorer_checks_the_initial_configuration() {
        // A predicate that rejects ONLY the initial configuration (before
        // any step is taken): pre-fix, the explorer never evaluated the
        // predicate on the root, so this system read as `verified`.
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let result = explore(&exec, ExploreConfig::default(), |e| {
            (e.steps() == 0).then(|| "the initial configuration is rejected".to_string())
        });
        assert!(!result.verified());
        assert_eq!(result.states_visited, 1);
        let violation = result
            .violation
            .expect("a depth-0 violation must be reported");
        assert!(
            violation.schedule.is_empty(),
            "the witnessing schedule for a root violation is empty, got {:?}",
            violation.schedule
        );
        assert!(violation.description.contains("initial configuration"));
    }

    #[test]
    fn depth_bound_reports_truncation() {
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let result = explore(&exec, ExploreConfig::with_depth(1), agreement_predicate(2));
        assert!(result.truncated);
        assert!(!result.verified());
        assert_eq!(result.max_depth_reached, 1, "depth bound caps the search");
    }

    #[test]
    fn max_depth_reached_spans_the_full_run_when_exhausted() {
        // Two ToyWriters halt after 2 steps each: the deepest maximal path
        // is exactly 4 steps, and exhausting the space must report it.
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let result = explore(&exec, ExploreConfig::default(), agreement_predicate(2));
        assert!(result.verified());
        assert_eq!(result.max_depth_reached, 4);
    }

    #[test]
    fn state_limit_reports_truncation() {
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let config = ExploreConfig {
            max_states: 2,
            ..ExploreConfig::default()
        };
        let result = explore(&exec, config, agreement_predicate(2));
        assert!(result.truncated);
        assert_eq!(result.states_visited, 2, "the budget itself is honored");
    }

    #[test]
    fn exact_state_budget_is_exhausted_not_truncated() {
        // The 2-writer space has a known, fixed size; a budget of exactly
        // that size must report an exhausted (verified) search. Pre-fix, the
        // `>=`-after-increment comparison flagged it as truncated.
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let space = explore(&exec, ExploreConfig::default(), agreement_predicate(2));
        assert!(space.verified());
        let exact = ExploreConfig {
            max_states: space.states_visited,
            ..ExploreConfig::default()
        };
        let result = explore(&exec, exact, agreement_predicate(2));
        assert!(
            result.verified(),
            "a budget of exactly the space size ({}) must exhaust, got {result:?}",
            space.states_visited
        );
        assert_eq!(result.states_visited, space.states_visited);

        // One state fewer genuinely truncates.
        let short = ExploreConfig {
            max_states: space.states_visited - 1,
            ..ExploreConfig::default()
        };
        let result = explore(&exec, short, agreement_predicate(2));
        assert!(result.truncated);
        assert!(!result.verified());
    }

    #[test]
    fn state_keys_are_wide_and_distinguish_states() {
        // Regression shape for the 64-bit dedup keys: the seen-set key is
        // 128 bits wide, its halves are independently salted, and distinct
        // reachable states produce distinct keys. (The pre-fix code had a
        // single `u64` key, so this test did not even compile against it.)
        assert_eq!(std::mem::size_of::<StateKey>(), 16);
        let mut exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let root = state_key(&exec);
        assert_ne!(
            root.parts()[0],
            root.parts()[1],
            "the salt must decorrelate the two halves"
        );
        exec.step(ProcessId(0));
        let stepped = state_key(&exec);
        assert_ne!(root, stepped);
        // Keys are pure functions of the state.
        assert_eq!(stepped, state_key(&exec));
        // Shards are a prefix of the first half and stay in range.
        assert!(root.shard(64) < 64);
    }

    #[test]
    fn dedup_reduces_states_visited() {
        let exec = Executor::new(vec![
            ToyWriter::new(0, 1),
            ToyWriter::new(1, 2),
            ToyWriter::new(2, 3),
        ]);
        let with_dedup = explore(&exec, ExploreConfig::default(), agreement_predicate(3));
        let without = explore(
            &exec,
            ExploreConfig {
                dedup: false,
                ..ExploreConfig::default()
            },
            agreement_predicate(3),
        );
        assert!(with_dedup.verified() && without.verified());
        assert!(
            with_dedup.states_visited <= without.states_visited,
            "dedup should not increase the number of visited states"
        );
        assert_eq!(with_dedup.seen_entries, with_dedup.states_visited);
        assert_eq!(without.seen_entries, 0, "dedup off stores no keys");
    }

    #[test]
    fn symmetric_toy_writers_merge_under_process_id_symmetry() {
        // Two identical ToyWriters (same register, same value) are
        // interchangeable: the quotient halves the mixed-progress states.
        let exec = Executor::new(vec![ToyWriter::new(0, 7), ToyWriter::new(0, 7)]);
        let off = explore(&exec, ExploreConfig::default(), agreement_predicate(2));
        let sym = explore(
            &exec,
            ExploreConfig {
                symmetry: SymmetryMode::ProcessIds,
                ..ExploreConfig::default()
            },
            agreement_predicate(2),
        );
        assert!(off.verified() && sym.verified());
        assert!(!off.symmetry_applied);
        assert!(sym.symmetry_applied);
        assert!(
            sym.states_visited < off.states_visited,
            "equal-input slots must merge: {} !< {}",
            sym.states_visited,
            off.states_visited
        );
        // Equal-initial slots: every orbit member is reachable, so the
        // lower bound recovers the full state count exactly.
        assert_eq!(sym.full_states_lower_bound, off.states_visited);
        assert_eq!(off.full_states_lower_bound, off.states_visited);
    }

    #[test]
    fn id_carrying_slots_with_distinct_inputs_do_not_merge() {
        // RacyConsensus is IdCarrying: with distinct values the orbit
        // groups are singletons, so the quotient equals the full space and
        // the same witness is found.
        let exec = Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 10),
            RacyConsensus::new(ProcessId(1), 20),
        ]);
        let off = explore(&exec, ExploreConfig::default(), agreement_predicate(1));
        let sym = explore(
            &exec,
            ExploreConfig {
                symmetry: SymmetryMode::ProcessIds,
                ..ExploreConfig::default()
            },
            agreement_predicate(1),
        );
        assert!(sym.symmetry_applied);
        assert_eq!(sym.violation, off.violation, "witness must not change");
        assert_eq!(sym.states_visited, off.states_visited);
        assert_eq!(sym.full_states_lower_bound, off.states_visited);

        // With equal values the two slots form one orbit group and merge.
        let uniform = Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 5),
            RacyConsensus::new(ProcessId(1), 5),
        ]);
        let off = explore(&uniform, ExploreConfig::default(), agreement_predicate(1));
        let sym = explore(
            &uniform,
            ExploreConfig {
                symmetry: SymmetryMode::ProcessIds,
                ..ExploreConfig::default()
            },
            agreement_predicate(1),
        );
        assert!(off.verified() && sym.verified());
        assert!(sym.states_visited < off.states_visited);
        assert_eq!(sym.full_states_lower_bound, off.states_visited);
    }

    #[test]
    fn opaque_automata_fall_back_to_plain_exploration() {
        use crate::toy::Spinner;
        // Spinner keeps the Opaque default, so the request must be refused
        // (fall back) and the results must equal a plain exploration.
        let exec = Executor::new(vec![Spinner::new(0), Spinner::new(1)]);
        let config = ExploreConfig {
            max_depth: 4,
            max_states: 10_000,
            ..ExploreConfig::default()
        };
        let off = explore(&exec, config, agreement_predicate(2));
        let requested = explore(
            &exec,
            ExploreConfig {
                symmetry: SymmetryMode::ProcessIds,
                ..config
            },
            agreement_predicate(2),
        );
        assert!(!requested.symmetry_applied, "Opaque must refuse symmetry");
        assert_eq!(requested.states_visited, off.states_visited);
        assert_eq!(requested.paths, off.paths);
        assert_eq!(requested.truncated, off.truncated);
        assert_eq!(requested.full_states_lower_bound, off.states_visited);
    }

    #[test]
    fn symmetry_requires_dedup() {
        let exec = Executor::new(vec![ToyWriter::new(0, 7), ToyWriter::new(0, 7)]);
        let result = explore(
            &exec,
            ExploreConfig {
                dedup: false,
                symmetry: SymmetryMode::ProcessIds,
                ..ExploreConfig::default()
            },
            agreement_predicate(2),
        );
        assert!(
            !result.symmetry_applied,
            "symmetry is a dedup strategy; without a seen-set it must fall back"
        );
        assert_eq!(result.full_states_lower_bound, result.states_visited);
    }

    #[test]
    fn canonical_keys_are_invariant_under_orbit_permutations() {
        use sa_model::IdRelabeling;
        let mut exec = Executor::new(vec![ToyWriter::new(0, 7), ToyWriter::new(0, 7)]);
        exec.step(ProcessId(1));
        let plan = SymmetryPlan::for_executor(&exec, SymmetryMode::ProcessIds);
        assert!(plan.applied());
        assert_eq!(plan.orbit_groups(), 1);
        assert!(!plan.is_trivial(), "a 2-slot orbit group can merge");
        // Distinct-input id-carrying slots form singleton groups: the plan
        // is trivial, so the explorers take the plain-key fast path.
        let distinct = Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 10),
            RacyConsensus::new(ProcessId(1), 20),
        ]);
        let trivial = SymmetryPlan::for_executor(&distinct, SymmetryMode::ProcessIds);
        assert!(trivial.applied() && trivial.is_trivial());
        // A fallback plan degrades canonical keys to plain keys.
        let off = SymmetryPlan::for_executor(&exec, SymmetryMode::Off);
        assert!(!off.applied());
        assert_eq!(canonical_state_key(&exec, &off), (state_key(&exec), 1));
        let swap = IdRelabeling::swap(2, ProcessId(0), ProcessId(1));
        let swapped = exec.permuted(&swap);
        // The permuted configuration is a genuinely different state...
        assert_ne!(state_key(&exec), state_key(&swapped));
        // ...but canonicalization maps both to the same key and weight.
        assert_eq!(
            canonical_state_key(&exec, &plan),
            canonical_state_key(&swapped, &plan)
        );
        // Canonicalizing a canonical state is the identity.
        let canonical = exec.permuted(&plan.canonical_relabeling(&exec));
        assert!(plan.canonical_relabeling(&canonical).is_identity());
        assert_eq!(
            canonical_state_key(&canonical, &plan).0,
            canonical_state_key(&exec, &plan).0
        );
    }

    #[test]
    fn state_budget_preserves_pending_work() {
        // Budget of one state: the root is visited, its two children are
        // discovered and must BOTH remain pending. The pre-fix explorer
        // popped before checking the budget, so one discovered child was
        // silently discarded — neither visited, nor pending, nor counted —
        // which is unsound for checkpoint-resume accounting.
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let config = ExploreConfig {
            max_states: 1,
            ..ExploreConfig::default()
        };
        let result = explore(&exec, config, agreement_predicate(2));
        assert!(result.truncated);
        assert_eq!(result.states_visited, 1);
        assert_eq!(
            result.pending_at_exit, 2,
            "both children of the root stay pending"
        );
        assert_eq!(
            result.frontier_semantics,
            FrontierSemantics::DfsStackDepth,
            "the serial explorer reports a DFS stack depth"
        );

        // An exhausted search has nothing pending.
        let exhausted = explore(&exec, ExploreConfig::default(), agreement_predicate(2));
        assert!(exhausted.verified());
        assert_eq!(exhausted.pending_at_exit, 0);
    }

    #[test]
    fn spill_mode_is_byte_identical_to_in_core() {
        let exec = Executor::new(vec![
            ToyWriter::new(0, 1),
            ToyWriter::new(1, 2),
            ToyWriter::new(2, 3),
        ]);
        let base = explore(&exec, ExploreConfig::default(), agreement_predicate(3));
        assert!(base.verified());
        assert_eq!(base.spilled_entries, 0);
        // A 1-byte resident budget forces a spill after every expansion.
        let spilled = explore(
            &exec,
            ExploreConfig {
                spill: true,
                max_resident_bytes: 1,
                ..ExploreConfig::default()
            },
            agreement_predicate(3),
        );
        assert!(
            spilled.spilled_entries > 0,
            "the tiny cap must force spills"
        );
        assert!(spilled.verified());
        assert_eq!(spilled.states_visited, base.states_visited);
        assert_eq!(spilled.paths, base.paths);
        assert_eq!(spilled.violation, base.violation);
        assert_eq!(spilled.truncated, base.truncated);
        assert_eq!(spilled.max_depth_reached, base.max_depth_reached);
        assert_eq!(spilled.frontier_peak, base.frontier_peak);
        assert_eq!(spilled.pending_at_exit, base.pending_at_exit);
        assert_eq!(spilled.seen_entries, base.seen_entries);
        assert_eq!(spilled.approx_bytes, base.approx_bytes);
        assert_eq!(
            spilled.full_states_lower_bound,
            base.full_states_lower_bound
        );
    }

    #[test]
    fn spill_mode_finds_the_same_violation() {
        let exec = Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 10),
            RacyConsensus::new(ProcessId(1), 20),
        ]);
        let base = explore(&exec, ExploreConfig::default(), agreement_predicate(1));
        let spilled = explore(
            &exec,
            ExploreConfig {
                spill: true,
                max_resident_bytes: 1,
                ..ExploreConfig::default()
            },
            agreement_predicate(1),
        );
        assert_eq!(spilled.violation, base.violation, "witness must not change");
        assert_eq!(spilled.states_visited, base.states_visited);
    }

    #[test]
    fn memory_cap_without_spill_truncates_and_spill_rescues_it() {
        let exec = Executor::new(vec![
            ToyWriter::new(0, 1),
            ToyWriter::new(1, 2),
            ToyWriter::new(2, 3),
        ]);
        // Pick a cap below the cell's in-core peak but far above any single
        // entry, so the capped run makes real progress before giving up.
        let base = explore(&exec, ExploreConfig::default(), agreement_predicate(3));
        let cap = base.approx_bytes / 4;
        let capped_config = ExploreConfig {
            max_resident_bytes: cap,
            ..ExploreConfig::default()
        };
        let capped = explore(&exec, capped_config, agreement_predicate(3));
        assert!(capped.truncated, "an in-core run over budget must truncate");
        assert!(!capped.verified());
        assert!(capped.pending_at_exit > 0);
        // Deterministic: the same capped run yields the same report.
        let again = explore(&exec, capped_config, agreement_predicate(3));
        assert_eq!(capped.states_visited, again.states_visited);
        assert_eq!(capped.pending_at_exit, again.pending_at_exit);
        // The same budget with spill enabled exhausts the space.
        let rescued = explore(
            &exec,
            ExploreConfig {
                spill: true,
                ..capped_config
            },
            agreement_predicate(3),
        );
        assert!(
            rescued.verified(),
            "spill must let the capped cell exhaust: {rescued:?}"
        );
        assert!(rescued.spilled_entries > 0);
        assert_eq!(rescued.states_visited, base.states_visited);
    }

    #[test]
    fn deep_byte_accounting_charges_heap_payloads() {
        // ToyWriter states carry SimMemory registers: the deep estimate must
        // exceed the shallow per-entry struct sizes the pre-fix accounting
        // charged, and stay a pure function of the state.
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let shallow = std::mem::size_of::<Executor<ToyWriter>>() as u64;
        assert!(
            exec.approx_deep_bytes() > shallow,
            "deep size must charge heap payloads beyond the struct shell"
        );
        assert_eq!(exec.approx_deep_bytes(), exec.clone().approx_deep_bytes());
        assert_eq!(entry_bytes(&exec, 3), entry_bytes(&exec, 3));
        assert!(entry_bytes(&exec, 3) > entry_bytes(&exec, 0));
    }

    #[test]
    fn memory_statistics_are_populated_and_deterministic() {
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let a = explore(&exec, ExploreConfig::default(), agreement_predicate(2));
        let b = explore(&exec, ExploreConfig::default(), agreement_predicate(2));
        assert!(a.frontier_peak > 0);
        assert_eq!(a.seen_entries, a.states_visited);
        assert!(a.approx_bytes > 0);
        assert_eq!(
            (a.frontier_peak, a.seen_entries, a.approx_bytes),
            (b.frontier_peak, b.seen_entries, b.approx_bytes)
        );
    }

    #[test]
    fn sleep_sets_preserve_states_and_reduce_expansions() {
        // Three writers on distinct registers commute pairwise: sleep sets
        // must prune redundant orders while still visiting every state —
        // the soundness pin is states_visited invariance, the win is
        // measured on expansions.
        let exec = Executor::new(vec![
            ToyWriter::new(0, 1),
            ToyWriter::new(1, 2),
            ToyWriter::new(2, 3),
        ]);
        let off = explore(&exec, ExploreConfig::default(), agreement_predicate(3));
        let on = explore(
            &exec,
            ExploreConfig {
                reduction: ReductionMode::SleepSets,
                ..ExploreConfig::default()
            },
            agreement_predicate(3),
        );
        assert!(off.verified() && on.verified());
        assert!(!off.reduction_applied);
        assert!(on.reduction_applied);
        assert_eq!(on.states_visited, off.states_visited);
        assert_eq!(on.seen_entries, off.seen_entries);
        assert!(
            on.expansions < off.expansions,
            "sleep sets must prune expansions: {} !< {}",
            on.expansions,
            off.expansions
        );
        assert!(on.sleep_pruned > 0);
        assert_eq!(off.sleep_pruned, 0);
        // Deterministic: the same reduced run yields the same report.
        let again = explore(
            &exec,
            ExploreConfig {
                reduction: ReductionMode::SleepSets,
                ..ExploreConfig::default()
            },
            agreement_predicate(3),
        );
        assert_eq!(on.expansions, again.expansions);
        assert_eq!(on.sleep_pruned, again.sleep_pruned);
        assert_eq!(on.states_visited, again.states_visited);
    }

    #[test]
    fn sleep_sets_keep_the_racy_verdict() {
        // The dependent read/write pairs of RacyConsensus must never be
        // pruned: the reduced search still finds the 1-agreement violation
        // and visits the exact same set of states.
        let exec = Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 10),
            RacyConsensus::new(ProcessId(1), 20),
        ]);
        let off = explore(&exec, ExploreConfig::default(), agreement_predicate(1));
        let on = explore(
            &exec,
            ExploreConfig {
                reduction: ReductionMode::SleepSets,
                ..ExploreConfig::default()
            },
            agreement_predicate(1),
        );
        assert!(on.reduction_applied);
        assert!(!off.verified() && !on.verified(), "both must find the race");
        // (states_visited at exit may differ: a violating search stops
        // early, and pruning changes the order states are reached in. The
        // invariance pin applies to exhausted spaces — see the other tests.)
        let witness = on.violation.expect("the race must still be found");
        assert!(witness.description.contains("exceeding k = 1"));
        // The witness replays to a genuine violation of the same predicate.
        let mut replayed = exec.clone();
        for &p in &witness.schedule {
            replayed.step(p);
        }
        assert!(agreement_predicate(1)(&replayed).is_some());
    }

    #[test]
    fn sleep_sets_compose_with_symmetry() {
        // Identical writers: symmetry quotients states, sleep sets prune
        // orders of the quotient — the reductions multiply.
        let exec = Executor::new(vec![
            ToyWriter::new(0, 7),
            ToyWriter::new(1, 7),
            ToyWriter::new(2, 9),
        ]);
        let sym_only = explore(
            &exec,
            ExploreConfig {
                symmetry: SymmetryMode::ProcessIds,
                ..ExploreConfig::default()
            },
            agreement_predicate(3),
        );
        let both = explore(
            &exec,
            ExploreConfig {
                symmetry: SymmetryMode::ProcessIds,
                reduction: ReductionMode::SleepSets,
                ..ExploreConfig::default()
            },
            agreement_predicate(3),
        );
        assert!(sym_only.verified() && both.verified());
        assert!(both.symmetry_applied && both.reduction_applied);
        assert_eq!(both.states_visited, sym_only.states_visited);
        assert_eq!(
            both.full_states_lower_bound,
            sym_only.full_states_lower_bound
        );
        assert!(
            both.expansions < sym_only.expansions,
            "sleep sets must prune on top of the symmetry quotient: {} !< {}",
            both.expansions,
            sym_only.expansions
        );
    }

    #[test]
    fn sleep_sets_require_dedup() {
        // Sleep-set promises live in the seen-map; without dedup the mode
        // must fall back and report it, leaving the plain results intact.
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let plain = explore(
            &exec,
            ExploreConfig {
                dedup: false,
                ..ExploreConfig::default()
            },
            agreement_predicate(2),
        );
        let requested = explore(
            &exec,
            ExploreConfig {
                dedup: false,
                reduction: ReductionMode::SleepSets,
                ..ExploreConfig::default()
            },
            agreement_predicate(2),
        );
        assert!(!requested.reduction_applied);
        assert_eq!(requested.states_visited, plain.states_visited);
        assert_eq!(requested.expansions, plain.expansions);
        assert_eq!(requested.sleep_pruned, 0);
    }

    #[test]
    fn sleep_set_spill_is_byte_identical() {
        // Frontier spilling under reduction serializes sleep masks and
        // expansion promises through the record codec; draining them back
        // must change nothing but spilled_entries.
        let exec = Executor::new(vec![
            ToyWriter::new(0, 1),
            ToyWriter::new(1, 2),
            ToyWriter::new(2, 3),
        ]);
        let config = ExploreConfig {
            reduction: ReductionMode::SleepSets,
            ..ExploreConfig::default()
        };
        let base = explore(&exec, config, agreement_predicate(3));
        let spilled = explore(
            &exec,
            ExploreConfig {
                spill: true,
                max_resident_bytes: 1,
                ..config
            },
            agreement_predicate(3),
        );
        assert!(
            spilled.spilled_entries > 0,
            "the tiny cap must force spills"
        );
        assert!(spilled.verified());
        assert_eq!(spilled.states_visited, base.states_visited);
        assert_eq!(spilled.expansions, base.expansions);
        assert_eq!(spilled.sleep_pruned, base.sleep_pruned);
        assert_eq!(spilled.paths, base.paths);
        assert_eq!(spilled.max_depth_reached, base.max_depth_reached);
        assert_eq!(spilled.seen_entries, base.seen_entries);
    }

    #[test]
    fn persistent_sets_cut_states_below_sleep_sets() {
        // Three writers on distinct registers commute pairwise: a singleton
        // persistent set is dependency-closed, so the DPOR search explores
        // one interleaving where sleep sets still walk the whole product
        // lattice — the win is measured on *states*, not just expansions.
        let exec = Executor::new(vec![
            ToyWriter::new(0, 1),
            ToyWriter::new(1, 2),
            ToyWriter::new(2, 3),
        ]);
        let sleep = explore(
            &exec,
            ExploreConfig {
                reduction: ReductionMode::SleepSets,
                ..ExploreConfig::default()
            },
            agreement_predicate(3),
        );
        let dpor = explore(
            &exec,
            ExploreConfig {
                reduction: ReductionMode::PersistentSets,
                ..ExploreConfig::default()
            },
            agreement_predicate(3),
        );
        assert!(sleep.verified() && dpor.verified());
        assert!(dpor.reduction_applied);
        assert!(
            dpor.states_visited < sleep.states_visited,
            "persistent sets must cut states: {} !< {}",
            dpor.states_visited,
            sleep.states_visited
        );
        assert!(dpor.states_cut > 0);
        assert!(dpor.persistent_expanded > 0);
        assert_eq!(sleep.persistent_expanded, 0);
        assert_eq!(sleep.states_cut, 0);
        // Deterministic: the same reduced run yields the same report.
        let again = explore(
            &exec,
            ExploreConfig {
                reduction: ReductionMode::PersistentSets,
                ..ExploreConfig::default()
            },
            agreement_predicate(3),
        );
        assert_eq!(dpor.states_visited, again.states_visited);
        assert_eq!(dpor.expansions, again.expansions);
        assert_eq!(dpor.states_cut, again.states_cut);
        assert_eq!(dpor.persistent_expanded, again.persistent_expanded);
    }

    #[test]
    fn persistent_sets_keep_the_racy_verdict() {
        // RacyConsensus's read/write pairs are dependent: the backtrack sets
        // must grow until the violating interleaving is scheduled, and the
        // witness must replay to a genuine violation.
        let exec = Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 10),
            RacyConsensus::new(ProcessId(1), 20),
        ]);
        let off = explore(&exec, ExploreConfig::default(), agreement_predicate(1));
        let on = explore(
            &exec,
            ExploreConfig {
                reduction: ReductionMode::PersistentSets,
                ..ExploreConfig::default()
            },
            agreement_predicate(1),
        );
        assert!(on.reduction_applied);
        assert!(!off.verified() && !on.verified(), "both must find the race");
        let witness = on.violation.expect("the race must still be found");
        assert!(witness.description.contains("exceeding k = 1"));
        let mut replayed = exec.clone();
        for &p in &witness.schedule {
            replayed.step(p);
        }
        assert!(agreement_predicate(1)(&replayed).is_some());
    }

    #[test]
    fn persistent_sets_compose_with_symmetry() {
        // Symmetry quotients states, persistent sets then cut redundant
        // interleavings of the quotient; the verified verdict must survive
        // the composition.
        let exec = Executor::new(vec![
            ToyWriter::new(0, 7),
            ToyWriter::new(1, 7),
            ToyWriter::new(2, 9),
        ]);
        let sym_only = explore(
            &exec,
            ExploreConfig {
                symmetry: SymmetryMode::ProcessIds,
                ..ExploreConfig::default()
            },
            agreement_predicate(3),
        );
        let both = explore(
            &exec,
            ExploreConfig {
                symmetry: SymmetryMode::ProcessIds,
                reduction: ReductionMode::PersistentSets,
                ..ExploreConfig::default()
            },
            agreement_predicate(3),
        );
        assert!(sym_only.verified() && both.verified());
        assert!(both.symmetry_applied && both.reduction_applied);
        assert!(
            both.states_visited < sym_only.states_visited,
            "persistent sets must cut orbit states too: {} !< {}",
            both.states_visited,
            sym_only.states_visited
        );
    }

    #[test]
    fn persistent_sets_require_dedup() {
        // The DPOR seen-map carries the backtrack promises; without dedup
        // the mode must fall back and report it.
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let plain = explore(
            &exec,
            ExploreConfig {
                dedup: false,
                ..ExploreConfig::default()
            },
            agreement_predicate(2),
        );
        let requested = explore(
            &exec,
            ExploreConfig {
                dedup: false,
                reduction: ReductionMode::PersistentSets,
                ..ExploreConfig::default()
            },
            agreement_predicate(2),
        );
        assert!(!requested.reduction_applied);
        assert_eq!(requested.states_visited, plain.states_visited);
        assert_eq!(requested.expansions, plain.expansions);
        assert_eq!(requested.states_cut, 0);
        assert_eq!(requested.persistent_expanded, 0);
    }

    #[test]
    fn persistent_set_spill_is_byte_identical() {
        // DPOR frames spill their schedules through the frontier record
        // codec with the backtrack/done masks threaded alongside; draining
        // them back must change nothing but spilled_entries.
        let exec = Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 10),
            RacyConsensus::new(ProcessId(1), 10),
        ]);
        let config = ExploreConfig {
            reduction: ReductionMode::PersistentSets,
            ..ExploreConfig::default()
        };
        let base = explore(&exec, config, agreement_predicate(2));
        let spilled = explore(
            &exec,
            ExploreConfig {
                spill: true,
                max_resident_bytes: 1,
                ..config
            },
            agreement_predicate(2),
        );
        assert!(
            spilled.spilled_entries > 0,
            "the tiny cap must force spills"
        );
        assert!(base.verified() && spilled.verified());
        assert_eq!(spilled.states_visited, base.states_visited);
        assert_eq!(spilled.expansions, base.expansions);
        assert_eq!(spilled.states_cut, base.states_cut);
        assert_eq!(spilled.persistent_expanded, base.persistent_expanded);
        assert_eq!(spilled.paths, base.paths);
        assert_eq!(spilled.max_depth_reached, base.max_depth_reached);
        assert_eq!(spilled.seen_entries, base.seen_entries);
    }
}
