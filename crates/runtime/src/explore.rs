//! Bounded exhaustive exploration of interleavings — a tiny model checker.
//!
//! For small systems (a handful of processes, a bounded number of steps) it
//! is feasible to enumerate *every* schedule and check a safety predicate in
//! every reachable configuration. This provides much stronger evidence than
//! randomized testing:
//!
//! * the paper's algorithms (Figures 3–5) are checked to satisfy Validity and
//!   k-Agreement in **all** interleavings of small configurations, and
//! * deliberately under-provisioned variants (fewer registers than the lower
//!   bounds allow) are shown to have *some* interleaving that violates
//!   k-agreement — an executable companion to the Theorem 2 argument.
//!
//! States are deduplicated by hashing the automata, the memory contents and
//! the decisions taken so far, which keeps the search tractable well beyond
//! naive schedule enumeration.

use crate::executor::Executor;
use sa_model::{Automaton, ProcessId};
use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::{Hash, Hasher};

/// Configuration of a bounded exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Maximum number of steps along any single execution path.
    pub max_depth: u64,
    /// Maximum number of states to visit before giving up (truncation).
    pub max_states: u64,
    /// Whether to deduplicate states (requires hashing each state; almost
    /// always worth it).
    pub dedup: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_depth: 60,
            max_states: 2_000_000,
            dedup: true,
        }
    }
}

impl ExploreConfig {
    /// A config with the given depth bound.
    pub fn with_depth(max_depth: u64) -> Self {
        ExploreConfig {
            max_depth,
            ..ExploreConfig::default()
        }
    }
}

/// A safety violation discovered by the explorer, together with the schedule
/// that exhibits it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploredViolation {
    /// The schedule (sequence of process ids) leading to the violation.
    pub schedule: Vec<ProcessId>,
    /// A human-readable description produced by the predicate.
    pub description: String,
}

/// The result of a bounded exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Number of states visited.
    pub states_visited: u64,
    /// Number of maximal paths (all-halted or depth-bounded) examined.
    pub paths: u64,
    /// The first violation found, if any.
    pub violation: Option<ExploredViolation>,
    /// `true` if the search stopped because a limit was hit rather than
    /// because the state space was exhausted.
    pub truncated: bool,
    /// The deepest schedule prefix (in steps) the search examined. With
    /// dedup on this is the longest *non-revisiting* path, which can be far
    /// below `max_depth` even when the state space is exhausted.
    pub max_depth_reached: u64,
}

impl Exploration {
    /// `true` if no violation was found and the search was not truncated —
    /// i.e. the predicate holds in **every** reachable configuration within
    /// the depth bound.
    pub fn verified(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }
}

fn state_key<A>(executor: &Executor<A>) -> u64
where
    A: Automaton + Hash,
    A::Value: Hash + Clone + Eq + Debug,
{
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    for p in 0..executor.process_count() {
        executor.automaton(ProcessId(p)).hash(&mut hasher);
    }
    executor.memory().content_fingerprint().hash(&mut hasher);
    executor.decisions().hash(&mut hasher);
    hasher.finish()
}

/// Exhaustively explores every interleaving of the executor's processes up to
/// the configured depth, checking `predicate` in every reachable
/// configuration.
///
/// The predicate receives the executor after each step and returns
/// `Some(description)` to report a violation (which stops the search) or
/// `None` if the configuration is acceptable.
pub fn explore<A, F>(initial: &Executor<A>, config: ExploreConfig, mut predicate: F) -> Exploration
where
    A: Automaton + Clone + Hash,
    A::Value: Hash + Clone + Eq + Debug,
    F: FnMut(&Executor<A>) -> Option<String>,
{
    let mut seen: HashSet<u64> = HashSet::new();
    let mut result = Exploration {
        states_visited: 0,
        paths: 0,
        violation: None,
        truncated: false,
        max_depth_reached: 0,
    };
    // Depth-first search over (executor state, schedule prefix).
    let mut stack: Vec<(Executor<A>, Vec<ProcessId>)> = vec![(initial.clone(), Vec::new())];
    if config.dedup {
        seen.insert(state_key(initial));
    }
    while let Some((state, schedule)) = stack.pop() {
        result.states_visited += 1;
        result.max_depth_reached = result.max_depth_reached.max(schedule.len() as u64);
        if result.states_visited >= config.max_states {
            result.truncated = true;
            break;
        }
        let runnable = state.runnable();
        if runnable.is_empty() || schedule.len() as u64 >= config.max_depth {
            if !runnable.is_empty() {
                // Depth bound cut this path short.
                result.truncated = true;
            }
            result.paths += 1;
            continue;
        }
        for process in runnable {
            let mut next = state.clone();
            next.step(process);
            let mut next_schedule = schedule.clone();
            next_schedule.push(process);
            if let Some(description) = predicate(&next) {
                result.max_depth_reached = result.max_depth_reached.max(next_schedule.len() as u64);
                result.violation = Some(ExploredViolation {
                    schedule: next_schedule,
                    description,
                });
                return result;
            }
            if config.dedup {
                let key = state_key(&next);
                if !seen.insert(key) {
                    continue;
                }
            }
            stack.push((next, next_schedule));
        }
    }
    result
}

/// Convenience predicate: fail whenever more than `k` distinct values have
/// been decided in any instance (the k-Agreement safety property).
pub fn agreement_predicate<A>(k: usize) -> impl FnMut(&Executor<A>) -> Option<String>
where
    A: Automaton,
    A::Value: Clone + Eq + Debug,
{
    move |executor: &Executor<A>| {
        for instance in executor.decisions().instances() {
            let outputs = executor.decisions().outputs(instance);
            if outputs.len() > k {
                return Some(format!(
                    "instance {instance} has {} distinct outputs {:?}, exceeding k = {k}",
                    outputs.len(),
                    outputs
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{RacyConsensus, ToyWriter};

    #[test]
    fn explorer_verifies_trivially_safe_system() {
        // Two independent writers can never violate 2-agreement.
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let result = explore(&exec, ExploreConfig::default(), agreement_predicate(2));
        assert!(result.verified(), "unexpected result: {result:?}");
        assert!(result.states_visited > 0);
    }

    #[test]
    fn explorer_finds_the_racy_interleaving() {
        // RacyConsensus violates 1-agreement only when both processes read
        // before either writes; the explorer must find that schedule.
        let exec = Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 10),
            RacyConsensus::new(ProcessId(1), 20),
        ]);
        let result = explore(&exec, ExploreConfig::default(), agreement_predicate(1));
        let violation = result.violation.expect("the race must be found");
        assert!(violation.description.contains("exceeding k = 1"));
        // The violating schedule necessarily lets both processes read first.
        assert!(violation.schedule.len() >= 3);
    }

    #[test]
    fn racy_consensus_satisfies_two_agreement() {
        let exec = Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 10),
            RacyConsensus::new(ProcessId(1), 20),
        ]);
        let result = explore(&exec, ExploreConfig::default(), agreement_predicate(2));
        assert!(result.verified());
    }

    #[test]
    fn depth_bound_reports_truncation() {
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let result = explore(&exec, ExploreConfig::with_depth(1), agreement_predicate(2));
        assert!(result.truncated);
        assert!(!result.verified());
        assert_eq!(result.max_depth_reached, 1, "depth bound caps the search");
    }

    #[test]
    fn max_depth_reached_spans_the_full_run_when_exhausted() {
        // Two ToyWriters halt after 2 steps each: the deepest maximal path
        // is exactly 4 steps, and exhausting the space must report it.
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let result = explore(&exec, ExploreConfig::default(), agreement_predicate(2));
        assert!(result.verified());
        assert_eq!(result.max_depth_reached, 4);
    }

    #[test]
    fn state_limit_reports_truncation() {
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let config = ExploreConfig {
            max_states: 2,
            ..ExploreConfig::default()
        };
        let result = explore(&exec, config, agreement_predicate(2));
        assert!(result.truncated);
    }

    #[test]
    fn dedup_reduces_states_visited() {
        let exec = Executor::new(vec![
            ToyWriter::new(0, 1),
            ToyWriter::new(1, 2),
            ToyWriter::new(2, 3),
        ]);
        let with_dedup = explore(&exec, ExploreConfig::default(), agreement_predicate(3));
        let without = explore(
            &exec,
            ExploreConfig {
                dedup: false,
                ..ExploreConfig::default()
            },
            agreement_predicate(3),
        );
        assert!(with_dedup.verified() && without.verified());
        assert!(
            with_dedup.states_visited <= without.states_visited,
            "dedup should not increase the number of visited states"
        );
    }
}
