//! Bounded exhaustive exploration of interleavings — a tiny model checker.
//!
//! For small systems (a handful of processes, a bounded number of steps) it
//! is feasible to enumerate *every* schedule and check a safety predicate in
//! every reachable configuration. This provides much stronger evidence than
//! randomized testing:
//!
//! * the paper's algorithms (Figures 3–5) are checked to satisfy Validity and
//!   k-Agreement in **all** interleavings of small configurations, and
//! * deliberately under-provisioned variants (fewer registers than the lower
//!   bounds allow) are shown to have *some* interleaving that violates
//!   k-agreement — an executable companion to the Theorem 2 argument.
//!
//! States are deduplicated by a collision-resistant 128-bit [`StateKey`]
//! over the automata, the raw memory contents and the decisions taken so
//! far, which keeps the search tractable well beyond naive schedule
//! enumeration without risking an unsound prune (see
//! [`Exploration::verified`]).
//!
//! This module is the serial depth-first explorer; its work-stealing
//! counterpart, which shares the [`StateKey`] dedup guarantee, lives in
//! [`parallel_explore`](crate::parallel_explore).

use crate::executor::Executor;
use sa_model::{Automaton, ProcessId};
use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::{Hash, Hasher};

/// Configuration of a bounded exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Maximum number of steps along any single execution path.
    pub max_depth: u64,
    /// Maximum number of states to visit before giving up (truncation).
    /// A state space of **exactly** `max_states` states is exhausted, not
    /// truncated: truncation means the budget ran out while unexplored
    /// work remained.
    pub max_states: u64,
    /// Whether to deduplicate states (requires hashing each state; almost
    /// always worth it).
    pub dedup: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_depth: 60,
            max_states: 2_000_000,
            dedup: true,
        }
    }
}

impl ExploreConfig {
    /// A config with the given depth bound.
    pub fn with_depth(max_depth: u64) -> Self {
        ExploreConfig {
            max_depth,
            ..ExploreConfig::default()
        }
    }
}

/// A safety violation discovered by the explorer, together with the schedule
/// that exhibits it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploredViolation {
    /// The schedule (sequence of process ids) leading to the violation. An
    /// empty schedule means the **initial** configuration already violates
    /// the predicate.
    pub schedule: Vec<ProcessId>,
    /// A human-readable description produced by the predicate.
    pub description: String,
}

/// The result of a bounded exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Number of states visited.
    pub states_visited: u64,
    /// Number of maximal paths (all-halted or depth-bounded) examined.
    pub paths: u64,
    /// The first violation found, if any.
    pub violation: Option<ExploredViolation>,
    /// `true` if the search stopped because a limit was hit rather than
    /// because the state space was exhausted.
    pub truncated: bool,
    /// The deepest schedule prefix (in steps) the search examined. With
    /// dedup on this is the longest *non-revisiting* path for the serial
    /// explorer, and the breadth-first radius of the explored state space
    /// for the parallel explorer — both can be far below `max_depth` even
    /// when the state space is exhausted.
    pub max_depth_reached: u64,
    /// Peak size of the frontier of states awaiting expansion: the deepest
    /// DFS stack for [`explore`](crate::explore), the widest BFS level for
    /// [`parallel_explore`](crate::parallel_explore).
    pub frontier_peak: u64,
    /// Entries held by the dedup seen-set when the search stopped (0 with
    /// dedup disabled).
    pub seen_entries: u64,
    /// A rough, deterministic estimate of the bytes held by the explorer's
    /// data structures at their peak: seen-set keys plus frontier states.
    /// It is an accounting of the dominant terms, not a measurement.
    pub approx_bytes: u64,
}

impl Exploration {
    /// `true` if no violation was found and the search was not truncated —
    /// i.e. the predicate holds in **every** reachable configuration within
    /// the depth bound.
    ///
    /// # Soundness
    ///
    /// Deduplication keys are 128-bit salted hashes of the **full** canonical
    /// state (every automaton, the raw register/snapshot contents and all
    /// decisions — see [`StateKey`]), so a reachable state is pruned only if
    /// a state with the same key was already expanded. A false `verified`
    /// therefore requires a 128-bit collision between two distinct reachable
    /// states (probability ≈ `s² / 2¹²⁹` for `s` states — below `10⁻²⁵` even
    /// at the default two-million-state budget), not a 64-bit one as in
    /// earlier releases.
    pub fn verified(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }
}

/// A collision-resistant dedup key: two independently salted 64-bit hashes
/// over the full canonical state.
///
/// The pre-fix explorer keyed its seen-set by a single 64-bit
/// `DefaultHasher` value, so one hash collision anywhere in a million-state
/// search (birthday probability ≈ `s² / 2⁶⁵`, i.e. one in ~10⁷ per cell —
/// material across whole campaigns) could unsoundly prune a reachable state
/// while still reporting `verified`. The widened key makes that probability
/// negligible; see [`Exploration::verified`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateKey([u64; 2]);

impl StateKey {
    /// The two independently salted halves of the key.
    pub fn parts(&self) -> [u64; 2] {
        self.0
    }

    /// The shard index this key belongs to when the seen-set is split into
    /// `shards` parts — a prefix of the first half, so keys spread evenly.
    pub fn shard(&self, shards: usize) -> usize {
        debug_assert!(shards.is_power_of_two(), "shard counts are powers of two");
        ((self.0[0] >> 48) as usize) & (shards - 1)
    }
}

/// Feeds one canonical-state stream into two differently salted
/// `DefaultHasher`s, producing both halves of a [`StateKey`] in one
/// traversal of the state.
struct SplitHasher {
    plain: std::collections::hash_map::DefaultHasher,
    salted: std::collections::hash_map::DefaultHasher,
}

impl SplitHasher {
    fn new() -> Self {
        let plain = std::collections::hash_map::DefaultHasher::new();
        let mut salted = std::collections::hash_map::DefaultHasher::new();
        // Any fixed non-trivial prefix decorrelates the two finishes; the
        // SplitMix64 increment is as good as any.
        salted.write_u64(0x9E37_79B9_7F4A_7C15);
        SplitHasher { plain, salted }
    }

    /// Consumes the hasher into the full 128-bit key. Deliberately not
    /// named `finish`: the `Hasher::finish` impl below yields only the
    /// unsalted half, and shadowing it would invite exactly the 64-bit-key
    /// bug this type exists to fix.
    fn into_key(self) -> StateKey {
        StateKey([self.plain.finish(), self.salted.finish()])
    }
}

impl Hasher for SplitHasher {
    fn write(&mut self, bytes: &[u8]) {
        self.plain.write(bytes);
        self.salted.write(bytes);
    }

    fn finish(&self) -> u64 {
        self.plain.finish()
    }
}

/// The dedup key of an executor configuration: automata, raw memory
/// contents and decisions, hashed into a [`StateKey`]. Shared by the serial
/// and the parallel explorer so their seen-sets agree on state identity.
pub fn state_key<A>(executor: &Executor<A>) -> StateKey
where
    A: Automaton + Hash,
    A::Value: Hash + Clone + Eq + Debug,
{
    let mut hasher = SplitHasher::new();
    for p in 0..executor.process_count() {
        executor.automaton(ProcessId(p)).hash(&mut hasher);
    }
    // Hash the raw contents, not `content_fingerprint()`: routing the state
    // through a 64-bit intermediate would cap the whole key at 64 bits of
    // collision resistance no matter how wide the final key is.
    executor.memory().hash_contents(&mut hasher);
    executor.decisions().hash(&mut hasher);
    hasher.into_key()
}

/// The deterministic rough byte estimate behind
/// [`Exploration::approx_bytes`]: seen-set keys (plus table overhead) and
/// peak frontier entries (state struct shell, per-process automata, and the
/// schedule prefix).
pub(crate) fn estimate_bytes<A: Automaton>(
    processes: usize,
    seen_entries: u64,
    frontier_peak: u64,
    depth: u64,
) -> u64 {
    let key_entry = (std::mem::size_of::<StateKey>() + std::mem::size_of::<u64>()) as u64;
    let state_entry = (std::mem::size_of::<Executor<A>>() + processes * std::mem::size_of::<A>())
        as u64
        + depth * std::mem::size_of::<ProcessId>() as u64;
    seen_entries * key_entry + frontier_peak * state_entry
}

/// Exhaustively explores every interleaving of the executor's processes up to
/// the configured depth, checking `predicate` in every reachable
/// configuration — **including the initial one**.
///
/// The predicate receives the executor after each step and returns
/// `Some(description)` to report a violation (which stops the search) or
/// `None` if the configuration is acceptable.
pub fn explore<A, F>(initial: &Executor<A>, config: ExploreConfig, mut predicate: F) -> Exploration
where
    A: Automaton + Clone + Hash,
    A::Value: Hash + Clone + Eq + Debug,
    F: FnMut(&Executor<A>) -> Option<String>,
{
    let mut seen: HashSet<StateKey> = HashSet::new();
    let mut result = Exploration {
        states_visited: 0,
        paths: 0,
        violation: None,
        truncated: false,
        max_depth_reached: 0,
        frontier_peak: 0,
        seen_entries: 0,
        approx_bytes: 0,
    };
    // The initial configuration is reachable (by the empty schedule): a
    // predicate that rejects it must be reported, not silently skipped.
    if let Some(description) = predicate(initial) {
        result.states_visited = 1;
        result.violation = Some(ExploredViolation {
            schedule: Vec::new(),
            description,
        });
        return result;
    }
    // Depth-first search over (executor state, schedule prefix).
    let mut stack: Vec<(Executor<A>, Vec<ProcessId>)> = vec![(initial.clone(), Vec::new())];
    result.frontier_peak = 1;
    if config.dedup {
        seen.insert(state_key(initial));
    }
    loop {
        // Truncation means the budget ran out while work remained; visiting
        // exactly `max_states` states and then finding the stack empty is an
        // exhausted search.
        let Some((state, schedule)) = stack.pop() else {
            break;
        };
        if result.states_visited >= config.max_states {
            result.truncated = true;
            break;
        }
        result.states_visited += 1;
        result.max_depth_reached = result.max_depth_reached.max(schedule.len() as u64);
        let runnable = state.runnable();
        if runnable.is_empty() || schedule.len() as u64 >= config.max_depth {
            if !runnable.is_empty() {
                // Depth bound cut this path short.
                result.truncated = true;
            }
            result.paths += 1;
            continue;
        }
        for process in runnable {
            let mut next = state.clone();
            next.step(process);
            let mut next_schedule = schedule.clone();
            next_schedule.push(process);
            if let Some(description) = predicate(&next) {
                result.max_depth_reached = result.max_depth_reached.max(next_schedule.len() as u64);
                result.violation = Some(ExploredViolation {
                    schedule: next_schedule,
                    description,
                });
                result.seen_entries = seen.len() as u64;
                result.approx_bytes = estimate_bytes::<A>(
                    initial.process_count(),
                    result.seen_entries,
                    result.frontier_peak,
                    result.max_depth_reached,
                );
                return result;
            }
            if config.dedup {
                let key = state_key(&next);
                if !seen.insert(key) {
                    continue;
                }
            }
            stack.push((next, next_schedule));
        }
        result.frontier_peak = result.frontier_peak.max(stack.len() as u64);
    }
    result.seen_entries = seen.len() as u64;
    result.approx_bytes = estimate_bytes::<A>(
        initial.process_count(),
        result.seen_entries,
        result.frontier_peak,
        result.max_depth_reached,
    );
    result
}

/// Convenience predicate: fail whenever more than `k` distinct values have
/// been decided in any instance (the k-Agreement safety property).
///
/// The closure is `Fn + Sync`, so one definition serves both [`explore`]
/// (which accepts any `FnMut`) and
/// [`parallel_explore`](crate::parallel_explore).
pub fn agreement_predicate<A>(k: usize) -> impl Fn(&Executor<A>) -> Option<String> + Sync
where
    A: Automaton,
    A::Value: Clone + Eq + Debug,
{
    move |executor: &Executor<A>| {
        for instance in executor.decisions().instances() {
            let outputs = executor.decisions().outputs(instance);
            if outputs.len() > k {
                return Some(format!(
                    "instance {instance} has {} distinct outputs {:?}, exceeding k = {k}",
                    outputs.len(),
                    outputs
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{RacyConsensus, ToyWriter};

    #[test]
    fn explorer_verifies_trivially_safe_system() {
        // Two independent writers can never violate 2-agreement.
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let result = explore(&exec, ExploreConfig::default(), agreement_predicate(2));
        assert!(result.verified(), "unexpected result: {result:?}");
        assert!(result.states_visited > 0);
    }

    #[test]
    fn explorer_finds_the_racy_interleaving() {
        // RacyConsensus violates 1-agreement only when both processes read
        // before either writes; the explorer must find that schedule.
        let exec = Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 10),
            RacyConsensus::new(ProcessId(1), 20),
        ]);
        let result = explore(&exec, ExploreConfig::default(), agreement_predicate(1));
        let violation = result.violation.expect("the race must be found");
        assert!(violation.description.contains("exceeding k = 1"));
        // The violating schedule necessarily lets both processes read first.
        assert!(violation.schedule.len() >= 3);
    }

    #[test]
    fn racy_consensus_satisfies_two_agreement() {
        let exec = Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 10),
            RacyConsensus::new(ProcessId(1), 20),
        ]);
        let result = explore(&exec, ExploreConfig::default(), agreement_predicate(2));
        assert!(result.verified());
    }

    #[test]
    fn explorer_checks_the_initial_configuration() {
        // A predicate that rejects ONLY the initial configuration (before
        // any step is taken): pre-fix, the explorer never evaluated the
        // predicate on the root, so this system read as `verified`.
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let result = explore(&exec, ExploreConfig::default(), |e| {
            (e.steps() == 0).then(|| "the initial configuration is rejected".to_string())
        });
        assert!(!result.verified());
        assert_eq!(result.states_visited, 1);
        let violation = result
            .violation
            .expect("a depth-0 violation must be reported");
        assert!(
            violation.schedule.is_empty(),
            "the witnessing schedule for a root violation is empty, got {:?}",
            violation.schedule
        );
        assert!(violation.description.contains("initial configuration"));
    }

    #[test]
    fn depth_bound_reports_truncation() {
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let result = explore(&exec, ExploreConfig::with_depth(1), agreement_predicate(2));
        assert!(result.truncated);
        assert!(!result.verified());
        assert_eq!(result.max_depth_reached, 1, "depth bound caps the search");
    }

    #[test]
    fn max_depth_reached_spans_the_full_run_when_exhausted() {
        // Two ToyWriters halt after 2 steps each: the deepest maximal path
        // is exactly 4 steps, and exhausting the space must report it.
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let result = explore(&exec, ExploreConfig::default(), agreement_predicate(2));
        assert!(result.verified());
        assert_eq!(result.max_depth_reached, 4);
    }

    #[test]
    fn state_limit_reports_truncation() {
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let config = ExploreConfig {
            max_states: 2,
            ..ExploreConfig::default()
        };
        let result = explore(&exec, config, agreement_predicate(2));
        assert!(result.truncated);
        assert_eq!(result.states_visited, 2, "the budget itself is honored");
    }

    #[test]
    fn exact_state_budget_is_exhausted_not_truncated() {
        // The 2-writer space has a known, fixed size; a budget of exactly
        // that size must report an exhausted (verified) search. Pre-fix, the
        // `>=`-after-increment comparison flagged it as truncated.
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let space = explore(&exec, ExploreConfig::default(), agreement_predicate(2));
        assert!(space.verified());
        let exact = ExploreConfig {
            max_states: space.states_visited,
            ..ExploreConfig::default()
        };
        let result = explore(&exec, exact, agreement_predicate(2));
        assert!(
            result.verified(),
            "a budget of exactly the space size ({}) must exhaust, got {result:?}",
            space.states_visited
        );
        assert_eq!(result.states_visited, space.states_visited);

        // One state fewer genuinely truncates.
        let short = ExploreConfig {
            max_states: space.states_visited - 1,
            ..ExploreConfig::default()
        };
        let result = explore(&exec, short, agreement_predicate(2));
        assert!(result.truncated);
        assert!(!result.verified());
    }

    #[test]
    fn state_keys_are_wide_and_distinguish_states() {
        // Regression shape for the 64-bit dedup keys: the seen-set key is
        // 128 bits wide, its halves are independently salted, and distinct
        // reachable states produce distinct keys. (The pre-fix code had a
        // single `u64` key, so this test did not even compile against it.)
        assert_eq!(std::mem::size_of::<StateKey>(), 16);
        let mut exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let root = state_key(&exec);
        assert_ne!(
            root.parts()[0],
            root.parts()[1],
            "the salt must decorrelate the two halves"
        );
        exec.step(ProcessId(0));
        let stepped = state_key(&exec);
        assert_ne!(root, stepped);
        // Keys are pure functions of the state.
        assert_eq!(stepped, state_key(&exec));
        // Shards are a prefix of the first half and stay in range.
        assert!(root.shard(64) < 64);
    }

    #[test]
    fn dedup_reduces_states_visited() {
        let exec = Executor::new(vec![
            ToyWriter::new(0, 1),
            ToyWriter::new(1, 2),
            ToyWriter::new(2, 3),
        ]);
        let with_dedup = explore(&exec, ExploreConfig::default(), agreement_predicate(3));
        let without = explore(
            &exec,
            ExploreConfig {
                dedup: false,
                ..ExploreConfig::default()
            },
            agreement_predicate(3),
        );
        assert!(with_dedup.verified() && without.verified());
        assert!(
            with_dedup.states_visited <= without.states_visited,
            "dedup should not increase the number of visited states"
        );
        assert_eq!(with_dedup.seen_entries, with_dedup.states_visited);
        assert_eq!(without.seen_entries, 0, "dedup off stores no keys");
    }

    #[test]
    fn memory_statistics_are_populated_and_deterministic() {
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)]);
        let a = explore(&exec, ExploreConfig::default(), agreement_predicate(2));
        let b = explore(&exec, ExploreConfig::default(), agreement_predicate(2));
        assert!(a.frontier_peak > 0);
        assert_eq!(a.seen_entries, a.states_visited);
        assert!(a.approx_bytes > 0);
        assert_eq!(
            (a.frontier_peak, a.seen_entries, a.approx_bytes),
            (b.frontier_peak, b.seen_entries, b.approx_bytes)
        );
    }
}
