//! Execution traces: a step-by-step record of who did what.
//!
//! Traces are optional (they cost memory proportional to the number of steps)
//! but invaluable when debugging an algorithm or exhibiting a counterexample
//! execution found by the explorer or the lower-bound adversaries.

use sa_memory::Location;
use sa_model::{Decision, OpKind, ProcessId};
use std::fmt;

/// One step of an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The global step number (0-based).
    pub step: u64,
    /// The process that took the step.
    pub process: ProcessId,
    /// The kind of shared-memory operation performed.
    pub op: OpKind,
    /// The location written, for write-like operations.
    pub wrote: Option<Location>,
    /// Decisions produced by this step.
    pub decisions: Vec<Decision>,
}

/// A sequence of [`TraceEvent`]s describing an execution (or a fragment).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The recorded events, in execution order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The steps taken by one process, in order.
    pub fn steps_of(&self, process: ProcessId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.process == process)
    }

    /// The schedule of the trace: the sequence of process ids, one per step.
    pub fn schedule(&self) -> Vec<ProcessId> {
        self.events.iter().map(|e| e.process).collect()
    }

    /// All decision events in the trace, in order, with the deciding process.
    pub fn decisions(&self) -> Vec<(ProcessId, Decision)> {
        self.events
            .iter()
            .flat_map(|e| e.decisions.iter().map(move |d| (e.process, *d)))
            .collect()
    }

    /// The distinct locations written during the trace.
    pub fn written_locations(&self) -> Vec<Location> {
        let mut locations: Vec<Location> = self.events.iter().filter_map(|e| e.wrote).collect();
        locations.sort();
        locations.dedup();
        locations
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            write!(f, "[{:>6}] {} {}", e.step, e.process, e.op)?;
            if let Some(loc) = e.wrote {
                write!(f, " -> {loc:?}")?;
            }
            for d in &e.decisions {
                write!(f, "  DECIDE(instance={}, value={})", d.instance, d.value)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(step: u64, p: usize, op: OpKind) -> TraceEvent {
        TraceEvent {
            step,
            process: ProcessId(p),
            op,
            wrote: None,
            decisions: vec![],
        }
    }

    #[test]
    fn push_and_query() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(event(0, 0, OpKind::Update));
        t.push(event(1, 1, OpKind::Scan));
        t.push(TraceEvent {
            step: 2,
            process: ProcessId(0),
            op: OpKind::Scan,
            wrote: None,
            decisions: vec![Decision::new(1, 7)],
        });
        assert_eq!(t.len(), 3);
        assert_eq!(t.steps_of(ProcessId(0)).count(), 2);
        assert_eq!(t.schedule(), vec![ProcessId(0), ProcessId(1), ProcessId(0)]);
        assert_eq!(t.decisions(), vec![(ProcessId(0), Decision::new(1, 7))]);
    }

    #[test]
    fn written_locations_are_deduplicated() {
        let mut t = Trace::new();
        for step in 0..3 {
            t.push(TraceEvent {
                step,
                process: ProcessId(0),
                op: OpKind::Write,
                wrote: Some(Location::Register(1)),
                decisions: vec![],
            });
        }
        assert_eq!(t.written_locations(), vec![Location::Register(1)]);
    }

    #[test]
    fn display_mentions_decisions() {
        let mut t = Trace::new();
        t.push(TraceEvent {
            step: 0,
            process: ProcessId(2),
            op: OpKind::Scan,
            wrote: None,
            decisions: vec![Decision::new(3, 9)],
        });
        let s = t.to_string();
        assert!(s.contains("DECIDE"));
        assert!(s.contains("p2"));
        assert!(s.contains("instance=3"));
    }
}
