//! Schedulers: who takes the next step.
//!
//! In the asynchronous model an execution is just an interleaving of process
//! steps, so *the scheduler is the adversary*. The progress condition studied
//! by the paper — `m`-obstruction-freedom — quantifies over executions in
//! which at most `m` processes take infinitely many steps; the schedulers in
//! this module let tests and experiments produce exactly those executions
//! (plus crash patterns, bursts, solo runs and fully scripted interleavings).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sa_model::ProcessId;
use std::collections::BTreeMap;

/// What a scheduler is allowed to observe when picking the next process: the
/// global step number and the processes that are still able to take a step
/// (not halted).
#[derive(Debug, Clone)]
pub struct SchedulerView<'a> {
    /// Number of steps taken so far in the execution.
    pub step: u64,
    /// Processes that have not halted.
    pub runnable: &'a [ProcessId],
}

/// A policy choosing which process takes the next step.
///
/// Returning `None` ends the execution (the scheduler has no process it is
/// willing to run); the executor reports this as
/// [`StopReason::SchedulerExhausted`](crate::StopReason::SchedulerExhausted).
pub trait Scheduler {
    /// Picks the next process to step among `view.runnable`.
    fn next(&mut self, view: &SchedulerView<'_>) -> Option<ProcessId>;

    /// A short human-readable name used in reports and benchmarks.
    fn name(&self) -> &str {
        "scheduler"
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn next(&mut self, view: &SchedulerView<'_>) -> Option<ProcessId> {
        (**self).next(view)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Schedules runnable processes in cyclic order — the maximally fair,
/// maximally contended schedule.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Scheduler for RoundRobin {
    fn next(&mut self, view: &SchedulerView<'_>) -> Option<ProcessId> {
        if view.runnable.is_empty() {
            return None;
        }
        let pick = view.runnable[self.cursor % view.runnable.len()];
        self.cursor = self.cursor.wrapping_add(1);
        Some(pick)
    }

    fn name(&self) -> &str {
        "round-robin"
    }
}

/// Schedules a uniformly random runnable process at every step,
/// reproducibly from a seed.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a random scheduler from a seed.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn next(&mut self, view: &SchedulerView<'_>) -> Option<ProcessId> {
        if view.runnable.is_empty() {
            return None;
        }
        let idx = self.rng.gen_range(0..view.runnable.len());
        Some(view.runnable[idx])
    }

    fn name(&self) -> &str {
        "random"
    }
}

/// An `m`-obstruction adversary: for a configurable prefix it behaves like an
/// arbitrary (seeded random) scheduler over all processes; afterwards it only
/// schedules the configured set of *survivors*.
///
/// If the survivor set has size at most `m`, every execution it produces
/// satisfies the hypothesis of `m`-obstruction-freedom, so every correct
/// process must terminate — this is the schedule used by the termination
/// tests and the obstruction benchmarks.
#[derive(Debug, Clone)]
pub struct ObstructionScheduler {
    contention_steps: u64,
    survivors: Vec<ProcessId>,
    rng: StdRng,
}

impl ObstructionScheduler {
    /// Creates an obstruction adversary that schedules arbitrarily for
    /// `contention_steps` steps and then restricts to `survivors`.
    pub fn new(contention_steps: u64, survivors: Vec<ProcessId>, seed: u64) -> Self {
        ObstructionScheduler {
            contention_steps,
            survivors,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// An adversary that never contends: only `survivors` ever run.
    pub fn isolated(survivors: Vec<ProcessId>, seed: u64) -> Self {
        ObstructionScheduler::new(0, survivors, seed)
    }

    /// The survivor set.
    pub fn survivors(&self) -> &[ProcessId] {
        &self.survivors
    }
}

impl Scheduler for ObstructionScheduler {
    fn next(&mut self, view: &SchedulerView<'_>) -> Option<ProcessId> {
        if view.runnable.is_empty() {
            return None;
        }
        let pool: Vec<ProcessId> = if view.step < self.contention_steps {
            view.runnable.to_vec()
        } else {
            view.runnable
                .iter()
                .copied()
                .filter(|p| self.survivors.contains(p))
                .collect()
        };
        if pool.is_empty() {
            return None;
        }
        let idx = self.rng.gen_range(0..pool.len());
        Some(pool[idx])
    }

    fn name(&self) -> &str {
        "obstruction"
    }
}

/// A crash adversary: wraps another scheduler but stops scheduling each
/// process once it has taken its configured number of steps, modelling a
/// crash failure at that point.
#[derive(Debug, Clone)]
pub struct CrashScheduler<S> {
    inner: S,
    crash_after: BTreeMap<ProcessId, u64>,
    taken: BTreeMap<ProcessId, u64>,
}

impl<S: Scheduler> CrashScheduler<S> {
    /// Creates a crash adversary around `inner`; `crash_after[p]` is the
    /// number of steps process `p` takes before crashing (processes absent
    /// from the map never crash).
    pub fn new(inner: S, crash_after: BTreeMap<ProcessId, u64>) -> Self {
        CrashScheduler {
            inner,
            crash_after,
            taken: BTreeMap::new(),
        }
    }

    /// The processes that have already crashed.
    pub fn crashed(&self) -> Vec<ProcessId> {
        self.crash_after
            .iter()
            .filter(|(p, limit)| self.taken.get(p).copied().unwrap_or(0) >= **limit)
            .map(|(p, _)| *p)
            .collect()
    }
}

impl<S: Scheduler> Scheduler for CrashScheduler<S> {
    fn next(&mut self, view: &SchedulerView<'_>) -> Option<ProcessId> {
        let alive: Vec<ProcessId> = view
            .runnable
            .iter()
            .copied()
            .filter(|p| {
                let limit = self.crash_after.get(p).copied().unwrap_or(u64::MAX);
                self.taken.get(p).copied().unwrap_or(0) < limit
            })
            .collect();
        if alive.is_empty() {
            return None;
        }
        let inner_view = SchedulerView {
            step: view.step,
            runnable: &alive,
        };
        let pick = self.inner.next(&inner_view)?;
        *self.taken.entry(pick).or_insert(0) += 1;
        Some(pick)
    }

    fn name(&self) -> &str {
        "crash"
    }
}

/// Runs a single process and nobody else — the solo schedule under which
/// plain obstruction-freedom (`m = 1`) guarantees termination.
#[derive(Debug, Clone)]
pub struct SoloScheduler {
    process: ProcessId,
}

impl SoloScheduler {
    /// Creates a scheduler that only ever runs `process`.
    pub fn new(process: ProcessId) -> Self {
        SoloScheduler { process }
    }
}

impl Scheduler for SoloScheduler {
    fn next(&mut self, view: &SchedulerView<'_>) -> Option<ProcessId> {
        view.runnable.iter().copied().find(|p| *p == self.process)
    }

    fn name(&self) -> &str {
        "solo"
    }
}

/// Replays an explicit sequence of process ids; used by tests and by the
/// lower-bound adversaries, which construct executions step by step.
#[derive(Debug, Clone)]
pub struct ScriptedScheduler {
    script: Vec<ProcessId>,
    position: usize,
    skip_halted: bool,
}

impl ScriptedScheduler {
    /// Creates a scheduler that replays `script` and then stops. Entries
    /// whose process has halted are skipped.
    pub fn new(script: Vec<ProcessId>) -> Self {
        ScriptedScheduler {
            script,
            position: 0,
            skip_halted: true,
        }
    }

    /// Like [`ScriptedScheduler::new`] but entries for halted processes end
    /// the schedule instead of being skipped.
    pub fn strict(script: Vec<ProcessId>) -> Self {
        ScriptedScheduler {
            script,
            position: 0,
            skip_halted: false,
        }
    }

    /// How many entries of the script have been consumed.
    pub fn consumed(&self) -> usize {
        self.position
    }
}

impl Scheduler for ScriptedScheduler {
    fn next(&mut self, view: &SchedulerView<'_>) -> Option<ProcessId> {
        while self.position < self.script.len() {
            let pick = self.script[self.position];
            self.position += 1;
            if view.runnable.contains(&pick) {
                return Some(pick);
            }
            if !self.skip_halted {
                return None;
            }
        }
        None
    }

    fn name(&self) -> &str {
        "scripted"
    }
}

/// Schedules processes in randomly chosen bursts: a process is picked
/// (seeded-randomly) and then runs for a whole burst of consecutive steps.
/// Long bursts approximate low contention; burst length 1 degenerates to
/// [`RandomScheduler`].
#[derive(Debug, Clone)]
pub struct BurstScheduler {
    rng: StdRng,
    burst_len: u64,
    current: Option<ProcessId>,
    remaining: u64,
}

impl BurstScheduler {
    /// Creates a burst scheduler with the given burst length.
    ///
    /// # Panics
    ///
    /// Panics if `burst_len` is zero.
    pub fn new(burst_len: u64, seed: u64) -> Self {
        assert!(burst_len > 0, "burst length must be positive");
        BurstScheduler {
            rng: StdRng::seed_from_u64(seed),
            burst_len,
            current: None,
            remaining: 0,
        }
    }
}

impl Scheduler for BurstScheduler {
    fn next(&mut self, view: &SchedulerView<'_>) -> Option<ProcessId> {
        if view.runnable.is_empty() {
            return None;
        }
        if let Some(p) = self.current {
            if self.remaining > 0 && view.runnable.contains(&p) {
                self.remaining -= 1;
                return Some(p);
            }
        }
        let idx = self.rng.gen_range(0..view.runnable.len());
        let pick = view.runnable[idx];
        self.current = Some(pick);
        self.remaining = self.burst_len - 1;
        Some(pick)
    }

    fn name(&self) -> &str {
        "burst"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<ProcessId> {
        ProcessId::all(n).collect()
    }

    fn view(runnable: &[ProcessId], step: u64) -> SchedulerView<'_> {
        SchedulerView { step, runnable }
    }

    #[test]
    fn round_robin_cycles_fairly() {
        let procs = ids(3);
        let mut s = RoundRobin::new();
        let picks: Vec<_> = (0..6).map(|i| s.next(&view(&procs, i)).unwrap()).collect();
        assert_eq!(
            picks,
            vec![
                ProcessId(0),
                ProcessId(1),
                ProcessId(2),
                ProcessId(0),
                ProcessId(1),
                ProcessId(2)
            ]
        );
    }

    #[test]
    fn round_robin_handles_empty() {
        let mut s = RoundRobin::new();
        assert_eq!(s.next(&view(&[], 0)), None);
    }

    #[test]
    fn random_scheduler_is_deterministic_per_seed() {
        let procs = ids(5);
        let picks = |seed| {
            let mut s = RandomScheduler::new(seed);
            (0..20)
                .map(|i| s.next(&view(&procs, i)).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8));
    }

    #[test]
    fn obstruction_scheduler_restricts_after_prefix() {
        let procs = ids(4);
        let survivors = vec![ProcessId(1), ProcessId(2)];
        let mut s = ObstructionScheduler::new(10, survivors.clone(), 3);
        for step in 0..100u64 {
            let pick = s.next(&view(&procs, step)).unwrap();
            if step >= 10 {
                assert!(survivors.contains(&pick), "step {step} scheduled {pick}");
            }
        }
        assert_eq!(s.survivors(), &survivors[..]);
    }

    #[test]
    fn obstruction_scheduler_stops_if_survivors_halt() {
        let mut s = ObstructionScheduler::isolated(vec![ProcessId(0)], 1);
        // Only p1 is runnable, but the adversary refuses to schedule it.
        assert_eq!(s.next(&view(&[ProcessId(1)], 0)), None);
    }

    #[test]
    fn crash_scheduler_stops_scheduling_after_limit() {
        let procs = ids(2);
        let mut crash_after = BTreeMap::new();
        crash_after.insert(ProcessId(0), 3u64);
        let mut s = CrashScheduler::new(RoundRobin::new(), crash_after);
        let mut count_p0 = 0;
        for step in 0..50u64 {
            match s.next(&view(&procs, step)) {
                Some(ProcessId(0)) => count_p0 += 1,
                Some(_) => {}
                None => break,
            }
        }
        assert_eq!(count_p0, 3);
        assert_eq!(s.crashed(), vec![ProcessId(0)]);
    }

    #[test]
    fn crash_scheduler_ends_when_everyone_crashed() {
        let procs = ids(1);
        let mut crash_after = BTreeMap::new();
        crash_after.insert(ProcessId(0), 1u64);
        let mut s = CrashScheduler::new(RoundRobin::new(), crash_after);
        assert!(s.next(&view(&procs, 0)).is_some());
        assert!(s.next(&view(&procs, 1)).is_none());
    }

    #[test]
    fn crash_at_step_zero_never_schedules_the_process() {
        use crate::executor::{Executor, RunConfig, StopReason};
        use crate::toy::ToyWriter;
        let automata = vec![
            ToyWriter::new(0, 1),
            ToyWriter::new(1, 2),
            ToyWriter::new(2, 3),
        ];
        let mut exec = Executor::new(automata);
        let mut crash_after = BTreeMap::new();
        crash_after.insert(ProcessId(0), 0u64);
        let mut sched = CrashScheduler::new(RoundRobin::new(), crash_after);
        // p0 is crashed before its first step; it must never run.
        assert_eq!(sched.crashed(), vec![ProcessId(0)]);
        let report = exec.run(&mut sched, RunConfig::default());
        assert_eq!(report.steps_per_process[0], 0);
        // The survivors run alone (obstruction-freedom) and must terminate.
        assert!(report.halted[1] && report.halted[2]);
        assert_eq!(report.stop, StopReason::SchedulerExhausted);
    }

    #[test]
    fn all_processes_crashing_exhausts_the_scheduler() {
        use crate::executor::{Executor, RunConfig, StopReason};
        use crate::toy::Spinner;
        let automata = vec![Spinner::new(0), Spinner::new(0), Spinner::new(0)];
        let mut exec = Executor::new(automata);
        let crash_after: BTreeMap<ProcessId, u64> = (0..3).map(|p| (ProcessId(p), 2u64)).collect();
        let mut sched = CrashScheduler::new(RoundRobin::new(), crash_after);
        let report = exec.run(&mut sched, RunConfig::default());
        // Every process takes exactly its pre-crash budget, then the
        // execution ends — the executor must not spin forever.
        assert_eq!(report.stop, StopReason::SchedulerExhausted);
        assert_eq!(report.steps, 6);
        assert_eq!(report.steps_per_process, vec![2, 2, 2]);
        assert_eq!(sched.crashed().len(), 3);
    }

    #[test]
    fn crash_points_beyond_the_budget_never_bite() {
        use crate::executor::{Executor, RunConfig, StopReason};
        use crate::toy::ToyWriter;
        let automata = vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)];
        let mut exec = Executor::new(automata);
        let crash_after: BTreeMap<ProcessId, u64> =
            (0..2).map(|p| (ProcessId(p), 1_000_000u64)).collect();
        let mut sched = CrashScheduler::new(RoundRobin::new(), crash_after);
        let report = exec.run(&mut sched, RunConfig::with_max_steps(100));
        // The crash points lie far beyond what the processes need: the run
        // looks exactly like a crash-free one.
        assert_eq!(report.stop, StopReason::AllHalted);
        assert!(report.all_halted());
        assert!(sched.crashed().is_empty());
    }

    #[test]
    fn surviving_processes_terminate_under_crashed_obstruction() {
        use crate::executor::{Executor, RunConfig};
        use crate::toy::ToyWriter;
        // Obstruction survivors {0, 1}; p1 crashes after one step. The
        // remaining survivor runs solo and must still terminate.
        let automata = vec![
            ToyWriter::new(0, 1),
            ToyWriter::new(1, 2),
            ToyWriter::new(2, 3),
        ];
        let mut exec = Executor::new(automata);
        let inner = ObstructionScheduler::new(4, vec![ProcessId(0), ProcessId(1)], 9);
        let mut crash_after = BTreeMap::new();
        crash_after.insert(ProcessId(1), 1u64);
        let mut sched = CrashScheduler::new(inner, crash_after);
        let report = exec.run(&mut sched, RunConfig::default());
        assert!(report.halted[0], "the non-crashed survivor must decide");
        assert!(report.steps_per_process[1] <= 1);
    }

    #[test]
    fn boxed_schedulers_delegate() {
        let procs = ids(3);
        let mut boxed: Box<dyn Scheduler> = Box::new(RoundRobin::new());
        assert_eq!(boxed.name(), "round-robin");
        assert_eq!(boxed.next(&view(&procs, 0)), Some(ProcessId(0)));
        assert_eq!(boxed.next(&view(&procs, 1)), Some(ProcessId(1)));
    }

    #[test]
    fn solo_scheduler_only_runs_its_process() {
        let procs = ids(3);
        let mut s = SoloScheduler::new(ProcessId(2));
        for step in 0..10u64 {
            assert_eq!(s.next(&view(&procs, step)), Some(ProcessId(2)));
        }
        // If the process halts, the schedule ends.
        assert_eq!(s.next(&view(&[ProcessId(0)], 10)), None);
    }

    #[test]
    fn scripted_scheduler_replays_and_skips_halted() {
        let mut s = ScriptedScheduler::new(vec![ProcessId(0), ProcessId(1), ProcessId(0)]);
        let runnable = vec![ProcessId(0)];
        assert_eq!(s.next(&view(&runnable, 0)), Some(ProcessId(0)));
        // ProcessId(1) is not runnable: skipped, moves on to the next entry.
        assert_eq!(s.next(&view(&runnable, 1)), Some(ProcessId(0)));
        assert_eq!(s.next(&view(&runnable, 2)), None);
        assert_eq!(s.consumed(), 3);
    }

    #[test]
    fn strict_scripted_scheduler_stops_at_halted_entry() {
        let mut s = ScriptedScheduler::strict(vec![ProcessId(1), ProcessId(0)]);
        let runnable = vec![ProcessId(0)];
        assert_eq!(s.next(&view(&runnable, 0)), None);
    }

    #[test]
    fn burst_scheduler_runs_bursts() {
        let procs = ids(4);
        let mut s = BurstScheduler::new(5, 11);
        let picks: Vec<_> = (0..20).map(|i| s.next(&view(&procs, i)).unwrap()).collect();
        for chunk in picks.chunks(5) {
            assert!(
                chunk.iter().all(|p| *p == chunk[0]),
                "burst not contiguous: {chunk:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "burst length must be positive")]
    fn zero_burst_length_is_rejected() {
        let _ = BurstScheduler::new(0, 0);
    }

    #[test]
    fn scheduler_names_are_distinct() {
        let names = [
            RoundRobin::new().name().to_string(),
            RandomScheduler::new(0).name().to_string(),
            ObstructionScheduler::isolated(vec![], 0).name().to_string(),
            SoloScheduler::new(ProcessId(0)).name().to_string(),
            ScriptedScheduler::new(vec![]).name().to_string(),
            BurstScheduler::new(1, 0).name().to_string(),
        ];
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
