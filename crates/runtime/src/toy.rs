//! Tiny toy automata used to exercise the runtime independently of the real
//! set-agreement algorithms.
//!
//! They are exposed publicly because they are handy in doc examples,
//! downstream tests and benchmarks that need a predictable, minimal workload;
//! they are *not* correct set-agreement algorithms (that is the point — the
//! explorer and the property checkers must be able to catch their violations).

use sa_model::{
    Automaton, Decision, IdRelabeling, InputValue, MemoryLayout, Op, ProcessId, Response,
    SymmetryClass,
};
use std::hash::{Hash, Hasher};

/// Writes its value to a register, then reads it back, decides it and halts.
/// Useful for smoke-testing executors and traces.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ToyWriter {
    register: usize,
    value: InputValue,
    stage: u8,
}

impl ToyWriter {
    /// Creates a writer that uses `register` and proposes `value`.
    pub fn new(register: usize, value: InputValue) -> Self {
        ToyWriter {
            register,
            value,
            stage: 0,
        }
    }
}

impl Automaton for ToyWriter {
    type Value = InputValue;

    fn layout(&self) -> MemoryLayout {
        MemoryLayout::registers_only(self.register + 1)
    }

    fn poised(&self) -> Option<Op<InputValue>> {
        match self.stage {
            0 => Some(Op::Write {
                register: self.register,
                value: self.value,
            }),
            1 => Some(Op::Read {
                register: self.register,
            }),
            _ => None,
        }
    }

    fn apply(&mut self, response: Response<InputValue>) -> Vec<Decision> {
        match self.stage {
            0 => {
                debug_assert_eq!(response, Response::Written);
                self.stage = 1;
                vec![]
            }
            1 => {
                let read = response.expect_read();
                self.stage = 2;
                vec![Decision::new(1, read.unwrap_or(self.value))]
            }
            _ => panic!("apply called on a halted ToyWriter"),
        }
    }

    fn symmetry_class(&self) -> SymmetryClass {
        // No process id anywhere; the register index is construction data
        // that travels with the slot, like any other local state. The
        // default `relabeled`/`hash_behavior`/`relabel_value` are correct.
        SymmetryClass::Anonymous
    }
}

/// A deliberately racy "agreement" automaton: it reads a register; if the
/// register is empty it writes its own value and decides it, otherwise it
/// decides whatever it read.
///
/// Under a solo schedule this trivially agrees, but two processes can both
/// read `⊥` before either writes, and then decide different values — exactly
/// the kind of interleaving bug the bounded explorer exists to find.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RacyConsensus {
    id: ProcessId,
    value: InputValue,
    stage: u8,
    saw: Option<InputValue>,
}

impl RacyConsensus {
    /// Creates the racy automaton for `id` proposing `value`.
    pub fn new(id: ProcessId, value: InputValue) -> Self {
        RacyConsensus {
            id,
            value,
            stage: 0,
            saw: None,
        }
    }
}

impl Automaton for RacyConsensus {
    type Value = InputValue;

    fn layout(&self) -> MemoryLayout {
        MemoryLayout::registers_only(1)
    }

    fn poised(&self) -> Option<Op<InputValue>> {
        match self.stage {
            0 => Some(Op::Read { register: 0 }),
            1 => match self.saw {
                // Saw nothing: claim the register.
                None => Some(Op::Write {
                    register: 0,
                    value: self.value,
                }),
                // Saw a value: decide it with a local step.
                Some(_) => Some(Op::Nop),
            },
            _ => None,
        }
    }

    fn apply(&mut self, response: Response<InputValue>) -> Vec<Decision> {
        match self.stage {
            0 => {
                self.saw = response.expect_read();
                self.stage = 1;
                vec![]
            }
            1 => {
                self.stage = 2;
                let decided = self.saw.unwrap_or(self.value);
                vec![Decision::new(1, decided)]
            }
            _ => panic!("apply called on a halted RacyConsensus"),
        }
    }

    fn symmetry_class(&self) -> SymmetryClass {
        // The id is carried in local state (though never consulted); the
        // register address is fixed and the values are plain `u64`s, so
        // consistent relabeling only has to rewrite the `id` field.
        SymmetryClass::IdCarrying
    }

    fn relabeled(&self, relabel: &IdRelabeling) -> Self {
        RacyConsensus {
            id: relabel.apply(self.id),
            ..self.clone()
        }
    }

    fn hash_behavior<H: Hasher>(&self, relabel: &IdRelabeling, state: &mut H) {
        relabel.apply(self.id).hash(state);
        self.value.hash(state);
        self.stage.hash(state);
        self.saw.hash(state);
    }
}

/// An automaton that never halts: it keeps rewriting the same register.
/// Useful for step-limit and starvation tests.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Spinner {
    register: usize,
    counter: u64,
}

impl Spinner {
    /// Creates a spinner over `register`.
    pub fn new(register: usize) -> Self {
        Spinner {
            register,
            counter: 0,
        }
    }

    /// The number of writes performed so far.
    pub fn writes(&self) -> u64 {
        self.counter
    }
}

impl Automaton for Spinner {
    type Value = InputValue;

    fn layout(&self) -> MemoryLayout {
        MemoryLayout::registers_only(self.register + 1)
    }

    fn poised(&self) -> Option<Op<InputValue>> {
        Some(Op::Write {
            register: self.register,
            value: self.counter,
        })
    }

    fn apply(&mut self, _response: Response<InputValue>) -> Vec<Decision> {
        self.counter += 1;
        vec![]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_writer_decides_after_two_steps() {
        let mut w = ToyWriter::new(0, 42);
        assert!(!w.is_halted());
        assert!(matches!(w.poised(), Some(Op::Write { .. })));
        assert!(w.apply(Response::Written).is_empty());
        assert!(matches!(w.poised(), Some(Op::Read { .. })));
        let d = w.apply(Response::Read(Some(42)));
        assert_eq!(d, vec![Decision::new(1, 42)]);
        assert!(w.is_halted());
    }

    #[test]
    fn racy_consensus_adopts_seen_value() {
        let mut a = RacyConsensus::new(ProcessId(1), 5);
        a.apply(Response::Read(Some(9)));
        assert_eq!(a.poised(), Some(Op::Nop));
        let d = a.apply(Response::Nop);
        assert_eq!(d, vec![Decision::new(1, 9)]);
    }

    #[test]
    fn racy_consensus_claims_when_empty() {
        let mut a = RacyConsensus::new(ProcessId(0), 5);
        a.apply(Response::Read(None));
        assert!(matches!(a.poised(), Some(Op::Write { value: 5, .. })));
        let d = a.apply(Response::Written);
        assert_eq!(d, vec![Decision::new(1, 5)]);
    }

    #[test]
    fn spinner_never_halts() {
        let mut s = Spinner::new(0);
        for _ in 0..100 {
            assert!(s.poised().is_some());
            s.apply(Response::Written);
        }
        assert_eq!(s.writes(), 100);
        assert!(!s.is_halted());
    }
}
