//! Execution runtime for the set-agreement reproduction.
//!
//! The paper studies algorithms in the asynchronous shared-memory model, so
//! an *execution* is an interleaving of atomic process steps and the
//! scheduler is the adversary. This crate provides everything needed to
//! produce, control and check such executions:
//!
//! * [`Executor`] — drives [`Automaton`](sa_model::Automaton) state machines
//!   against a deterministic [`SimMemory`](sa_memory::SimMemory), one atomic
//!   step at a time.
//! * [Schedulers](crate::Scheduler) — round-robin, seeded random,
//!   [`ObstructionScheduler`] (the m-obstruction adversary), crash, burst,
//!   solo and fully scripted schedules.
//! * [Property checkers](crate::properties) — Validity, k-Agreement and
//!   termination-under-obstruction, the three obligations of the paper's
//!   problem statement.
//! * [`explore`] — a bounded exhaustive explorer (tiny model checker) that
//!   checks a safety predicate in **every** interleaving of small
//!   configurations.
//! * [`parallel_explore`] — the same exhaustive check on a work-stealing
//!   worker pool, byte-identical at any thread count.
//! * [`check_commutation`] — the dynamic oracle auditing the static
//!   independence relation ([`sa_model::independent`]) that feeds the
//!   explorers' sleep-set partial-order reduction ([`ReductionMode`]).
//! * [`run_threaded`] — runs the same automata on real OS threads against a
//!   [`SharedMemory`](sa_memory::SharedMemory).
//! * [`Workload`] — reproducible input generators.
//!
//! # Example: an execution under the m-obstruction adversary
//!
//! ```
//! use sa_runtime::{Executor, ObstructionScheduler, RunConfig};
//! use sa_runtime::toy::ToyWriter;
//! use sa_model::ProcessId;
//!
//! let automata = vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2), ToyWriter::new(2, 3)];
//! let mut exec = Executor::new(automata);
//! // Heavy contention for 10 steps, then only p0 keeps running.
//! let mut adversary = ObstructionScheduler::new(10, vec![ProcessId(0)], 42);
//! let report = exec.run(&mut adversary, RunConfig::default());
//! assert!(report.halted[0], "the survivor must finish");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod commutation;
mod executor;
mod explore;
mod parallel;
pub mod properties;
mod schedule;
pub mod store;
mod threaded;
pub mod toy;
mod trace;
mod workload;

pub use commutation::{
    check_commutation, orders_commute, CommutationConfig, CommutationReport, CommutationViolation,
};
pub use executor::{
    Backend, Executor, RunConfig, RunReport, SearchConfig, SearchGoal, ServeClock, ServeLoad,
    ServeOptions, StopReason,
};
pub use explore::{
    agreement_predicate, canonical_state_key, checked_bit_of, checked_mask_of, explore,
    keyed_relabeled, mask_of, persistent_set, persistent_set_applies, relabel_mask, state_key,
    successor_sleep, unrelabel_mask, Exploration, ExploreConfig, ExploredViolation,
    FrontierSemantics, ReductionMode, StateKey, SymmetryMode, SymmetryPlan,
};
pub use parallel::{parallel_explore, ParallelExploreConfig};
pub use properties::{
    check_k_agreement, check_obstruction_termination, check_validity, AgreementViolation, InputLog,
    SafetyReport, TerminationViolation, ValidityViolation,
};
pub use schedule::{
    BurstScheduler, CrashScheduler, ObstructionScheduler, RandomScheduler, RoundRobin, Scheduler,
    SchedulerView, ScriptedScheduler, SoloScheduler,
};
pub use threaded::{run_threaded, ThreadedConfig, ThreadedReport};
pub use trace::{Trace, TraceEvent};
pub use workload::Workload;
