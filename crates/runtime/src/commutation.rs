//! The dynamic commutation checker: an executable oracle for the static
//! independence relation.
//!
//! Sleep-set reduction ([`ReductionMode::SleepSets`](crate::ReductionMode))
//! prunes the second order of every pair of transitions whose poised
//! operations [`sa_model::independent`] calls independent. That relation is
//! computed *statically* from op footprints — if it ever called a
//! non-commuting pair independent (say, after a new op kind or a memory
//! semantics change), the reduction would silently prune reachable states.
//! [`check_commutation`] closes that gap dynamically: it walks the reachable
//! configurations of a system and, for every enabled pair the static
//! analysis calls independent, executes **both orders** from the same
//! configuration and asserts the successors collapse to one state key.
//!
//! The sleep-set explorers also prune through a *state-conditional*
//! refinement — [`sa_memory::SimMemory::invisibly_independent`], which calls
//! same-value writes to one cell and already-present-value writes against a
//! reader independent in the state at hand — so the sweep audits that
//! relation too, at exactly the configurations it would be consulted from.
//!
//! The explorers additionally run the same oracle inline in debug builds
//! (see [`orders_commute`]): every pair a sleep set actually retains is
//! checked at the very expansion that would prune unsoundly. This module is
//! the campaign-level sweep — it checks *all* independent pairs everywhere,
//! not just the ones a particular search happens to keep asleep.

use crate::executor::Executor;
use crate::explore::state_key;
use crate::store::KeyTable;
use sa_model::{independent, Automaton, ProcessId};
use std::fmt::Debug;
use std::hash::Hash;

/// Bounds on a commutation sweep. The defaults match a medium exhaustive
/// cell; the sweep walks the same deduplicated state space an exploration
/// does, plus four extra steps per independent pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommutationConfig {
    /// Maximum schedule depth to walk.
    pub max_depth: u64,
    /// Maximum number of states to check before giving up.
    pub max_states: u64,
}

impl Default for CommutationConfig {
    fn default() -> Self {
        CommutationConfig {
            max_depth: 60,
            max_states: 100_000,
        }
    }
}

/// A pair the static analysis called independent whose two orders produced
/// **different** successor states — a witness that the footprint analysis
/// is unsound for this system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommutationViolation {
    /// The schedule reaching the configuration the pair diverges from.
    pub schedule: Vec<ProcessId>,
    /// The first process of the pair.
    pub first: ProcessId,
    /// The second process of the pair.
    pub second: ProcessId,
    /// The operation kind `first` was poised to perform.
    pub first_op: String,
    /// The operation kind `second` was poised to perform.
    pub second_op: String,
}

/// The result of a commutation sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommutationReport {
    /// Configurations walked.
    pub states_checked: u64,
    /// Statically-independent enabled pairs whose orders were executed.
    pub pairs_checked: u64,
    /// Enabled pairs the state-conditional invisible-write refinement
    /// ([`sa_memory::SimMemory::invisibly_independent`]) called independent
    /// where the static relation did not; each was executed in both orders
    /// from the very configuration the refinement judged.
    pub conditional_pairs_checked: u64,
    /// `true` if a bound cut the walk short of the full reachable space.
    pub truncated: bool,
    /// Every pair that failed to commute (empty on a sound relation).
    pub violations: Vec<CommutationViolation>,
}

impl CommutationReport {
    /// `true` if no independent pair failed to commute. A truncated pass is
    /// still a pass over everything walked — check
    /// [`truncated`](Self::truncated) separately when exhaustiveness
    /// matters.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// `true` if stepping `first` then `second` reaches the same configuration
/// as stepping `second` then `first` — the ground truth the static
/// independence relation predicts. Shared by [`check_commutation`] and the
/// explorers' debug-build inline oracle.
pub fn orders_commute<A>(state: &Executor<A>, first: ProcessId, second: ProcessId) -> bool
where
    A: Automaton + Clone + Hash,
    A::Value: Hash + Clone + Eq + Debug,
{
    let mut ab = state.clone();
    ab.step(first);
    ab.step(second);
    let mut ba = state.clone();
    ba.step(second);
    ba.step(first);
    state_key(&ab) == state_key(&ba)
}

/// Walks the deduplicated reachable configurations of `initial` and, in
/// every one, executes both orders of every enabled pair the interference
/// analysis calls independent — statically via [`sa_model::independent`] or
/// conditionally via
/// [`invisibly_independent`](sa_memory::SimMemory::invisibly_independent)
/// judged at that very configuration — collecting the pairs whose orders
/// diverge.
///
/// The walk is full-expansion (no reduction — the oracle must not trust the
/// relation it is auditing) and deterministic: depth-first in process
/// order, so a violating system yields the same witness every run.
pub fn check_commutation<A>(initial: &Executor<A>, config: CommutationConfig) -> CommutationReport
where
    A: Automaton + Clone + Hash,
    A::Value: Hash + Clone + Eq + Debug,
{
    let mut report = CommutationReport {
        states_checked: 0,
        pairs_checked: 0,
        conditional_pairs_checked: 0,
        truncated: false,
        violations: Vec::new(),
    };
    let mut seen = KeyTable::new();
    seen.insert(state_key(initial));
    let mut stack: Vec<(Executor<A>, Vec<ProcessId>)> = vec![(initial.clone(), Vec::new())];
    while let Some((state, schedule)) = stack.pop() {
        if report.states_checked >= config.max_states {
            report.truncated = true;
            break;
        }
        report.states_checked += 1;
        let runnable = state.runnable();
        for (i, &p) in runnable.iter().enumerate() {
            // A process with no poised op contributes no footprint; there
            // is nothing to audit.
            let Some(op_p) = state.poised(p) else {
                continue;
            };
            for &q in &runnable[i + 1..] {
                let Some(op_q) = state.poised(q) else {
                    continue;
                };
                // Audit both faces of the interference analysis: the static
                // footprint relation and, where it declines, the
                // state-conditional invisible-write refinement judged at
                // exactly this configuration — the same disjunction the
                // sleep-set explorers prune with.
                if independent(&op_p, &op_q) {
                    report.pairs_checked += 1;
                } else if state.memory().invisibly_independent(&op_p, &op_q) {
                    report.conditional_pairs_checked += 1;
                } else {
                    continue;
                }
                if !orders_commute(&state, p, q) {
                    report.violations.push(CommutationViolation {
                        schedule: schedule.clone(),
                        first: p,
                        second: q,
                        first_op: op_p.kind().to_string(),
                        second_op: op_q.kind().to_string(),
                    });
                }
            }
        }
        if schedule.len() as u64 >= config.max_depth {
            if !runnable.is_empty() {
                report.truncated = true;
            }
            continue;
        }
        for process in runnable {
            let mut next = state.clone();
            next.step(process);
            if seen.insert(state_key(&next)) {
                let mut next_schedule = schedule.clone();
                next_schedule.push(process);
                stack.push((next, next_schedule));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{RacyConsensus, ToyWriter};

    #[test]
    fn independent_writers_commute_everywhere() {
        // Three writers on three distinct registers: every enabled pair is
        // independent, and every one must commute.
        let exec = Executor::new(vec![
            ToyWriter::new(0, 1),
            ToyWriter::new(1, 2),
            ToyWriter::new(2, 3),
        ]);
        let report = check_commutation(&exec, CommutationConfig::default());
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(!report.truncated);
        assert!(report.states_checked > 1);
        assert!(report.pairs_checked > 0, "independent pairs must be found");
    }

    #[test]
    fn racy_readers_commute_where_independent() {
        // RacyConsensus processes read the same register before writing it:
        // the read/read pairs are independent (and commute); the read/write
        // and write/write pairs are dependent and never audited.
        let exec = Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 10),
            RacyConsensus::new(ProcessId(1), 20),
        ]);
        let report = check_commutation(&exec, CommutationConfig::default());
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.pairs_checked > 0, "the read/read pair is audited");
    }

    #[test]
    fn dependent_orders_genuinely_diverge() {
        // The ground-truth helper distinguishes a dependent pair: two
        // writers racing on one register with different values do NOT
        // commute — which is exactly why `independent` keeps them apart.
        let exec = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(0, 2)]);
        assert!(!orders_commute(&exec, ProcessId(0), ProcessId(1)));
        // Same values, though, collapse to one state either way.
        let same = Executor::new(vec![ToyWriter::new(0, 7), ToyWriter::new(0, 7)]);
        assert!(orders_commute(&same, ProcessId(0), ProcessId(1)));
    }

    #[test]
    fn conditional_pairs_are_audited() {
        // Two writers of the SAME value on one register: statically
        // dependent, but the invisible-write refinement calls them
        // independent — so the sweep must audit (and pass) them.
        let exec = Executor::new(vec![ToyWriter::new(0, 7), ToyWriter::new(0, 7)]);
        let report = check_commutation(&exec, CommutationConfig::default());
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(
            report.conditional_pairs_checked > 0,
            "the same-value write/write pair is conditionally independent"
        );
        // Different values stay dependent under both relations: nothing
        // conditional is audited and nothing can be (unsoundly) pruned.
        let racing = Executor::new(vec![ToyWriter::new(0, 1), ToyWriter::new(0, 2)]);
        let report = check_commutation(&racing, CommutationConfig::default());
        assert!(report.passed());
        assert_eq!(report.conditional_pairs_checked, 0);
    }

    #[test]
    fn state_budget_truncates() {
        let exec = Executor::new(vec![
            ToyWriter::new(0, 1),
            ToyWriter::new(1, 2),
            ToyWriter::new(2, 3),
        ]);
        let report = check_commutation(
            &exec,
            CommutationConfig {
                max_states: 2,
                ..CommutationConfig::default()
            },
        );
        assert!(report.truncated);
        assert_eq!(report.states_checked, 2);
    }
}
