//! Running automata on real OS threads.
//!
//! The same [`Automaton`] state machines that the deterministic simulator
//! drives can be driven by one OS thread per process against a
//! [`SharedMemory`]. This exercises genuine concurrency (the linearization
//! order is decided by the hardware and the OS scheduler rather than by a
//! simulated adversary), which is how the examples and several benchmarks run
//! the paper's algorithms.
//!
//! Two things differ from the simulator:
//!
//! * Termination is not guaranteed for obstruction-free algorithms when all
//!   `n` threads keep contending — that is the whole point of the paper's
//!   progress condition — so every thread gets a step budget and the report
//!   says who finished. Tests assert *safety* on threaded runs and assert
//!   termination only on runs whose contention pattern satisfies the
//!   m-obstruction hypothesis (e.g. solo or staggered runs).
//! * Decisions are collected through a channel, so the report also contains
//!   the wall-clock arrival order of decisions.

use crossbeam::channel;
use sa_memory::{MemoryMetrics, SharedMemory};
use sa_model::{Automaton, Decision, DecisionSet, MemoryLayout, ProcessId};
use std::fmt::Debug;
use std::time::{Duration, Instant};

/// Configuration of a threaded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadedConfig {
    /// Maximum number of shared-memory operations each thread may perform.
    pub max_steps_per_process: u64,
    /// Optional delay between consecutive thread starts; staggering starts
    /// reduces contention and in practice lets obstruction-free algorithms
    /// terminate quickly.
    pub stagger: Option<Duration>,
    /// Deterministic seed for everything the run derives pseudo-randomly —
    /// today the thread *spawn order* (a seed-derived permutation, so
    /// different seeds expose different start-up contention patterns and the
    /// same seed always spawns in the same order). Callers that generate
    /// workload inputs pseudo-randomly are expected to derive them from this
    /// same seed, which makes a threaded scenario reproducible *up to
    /// interleaving*: the inputs and spawn order are pinned, only the
    /// hardware's linearization order varies between runs.
    pub seed: u64,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            max_steps_per_process: 1_000_000,
            stagger: None,
            seed: 0,
        }
    }
}

impl ThreadedConfig {
    /// A config with the given per-thread step budget.
    pub fn with_step_budget(max_steps_per_process: u64) -> Self {
        ThreadedConfig {
            max_steps_per_process,
            ..ThreadedConfig::default()
        }
    }

    /// Adds a stagger delay between thread starts.
    pub fn staggered(mut self, delay: Duration) -> Self {
        self.stagger = Some(delay);
        self
    }

    /// Sets the deterministic seed (spawn order, caller-derived workloads).
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// SplitMix64: a tiny deterministic generator for the spawn-order shuffle
/// (the `rand` shim is not a dependency of this code path on purpose — the
/// permutation must stay stable even if the workload RNG evolves).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed-derived order in which threads are spawned (a Fisher–Yates
/// shuffle of `0..n`). Seed 0 keeps the natural order so existing callers
/// observe no change.
fn spawn_order(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    if seed != 0 {
        let mut state = seed;
        for i in (1..n).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
    }
    order
}

/// The result of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// All decisions, grouped by instance.
    pub decisions: DecisionSet,
    /// Decisions in wall-clock arrival order.
    pub arrival_order: Vec<(ProcessId, Decision)>,
    /// Steps taken by each process.
    pub steps_per_process: Vec<u64>,
    /// Which processes halted (completed all their operations) within budget.
    pub halted: Vec<bool>,
    /// Shared-memory usage metrics.
    pub metrics: MemoryMetrics,
    /// Wall-clock duration of the run (spawn of the first thread to join of
    /// the last).
    pub wall: Duration,
}

impl ThreadedReport {
    /// `true` if every process halted within its budget.
    pub fn all_halted(&self) -> bool {
        self.halted.iter().all(|h| *h)
    }

    /// Total shared-memory steps across all threads.
    pub fn total_steps(&self) -> u64 {
        self.steps_per_process.iter().sum()
    }

    /// Aggregate throughput in shared-memory steps per second (0.0 when the
    /// run was too fast for the clock to resolve).
    pub fn steps_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total_steps() as f64 / secs
        } else {
            0.0
        }
    }
}

/// Runs one OS thread per automaton against a shared memory sized to the
/// union of the automata's layouts.
pub fn run_threaded<A>(automata: Vec<A>, config: ThreadedConfig) -> ThreadedReport
where
    A: Automaton + Send,
    A::Value: Clone + Eq + Debug + Send + Sync,
{
    let layout = automata
        .iter()
        .map(|a| a.layout())
        .fold(MemoryLayout::default(), |acc, l| acc.union(&l));
    let memory = SharedMemory::for_layout(&layout);
    let process_count = automata.len();
    let (tx, rx) = channel::unbounded::<(ProcessId, Decision)>();

    let mut steps_per_process = vec![0u64; process_count];
    let mut halted = vec![false; process_count];
    // Spawn order is a seed-derived permutation; process identities are
    // unaffected (thread i always runs automaton i as ProcessId(i)), only
    // who gets a head start changes — which is exactly the axis a threaded
    // campaign wants to vary across seeds.
    let mut slots: Vec<Option<A>> = automata.into_iter().map(Some).collect();
    let order = spawn_order(process_count, config.seed);
    let start = Instant::now();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(process_count);
        for index in order {
            let mut automaton = slots[index].take().expect("spawn order is a permutation");
            let process = ProcessId(index);
            let memory = &memory;
            let tx = tx.clone();
            if let Some(delay) = config.stagger {
                std::thread::sleep(delay);
            }
            let budget = config.max_steps_per_process;
            handles.push(scope.spawn(move || {
                let mut steps = 0u64;
                while steps < budget {
                    let Some(op) = automaton.poised() else {
                        break;
                    };
                    let response = memory.apply(process, op).unwrap_or_else(|e| {
                        panic!("{process} issued an out-of-layout operation: {e}")
                    });
                    for decision in automaton.apply(response) {
                        // The receiver outlives all senders inside the scope.
                        let _ = tx.send((process, decision));
                    }
                    steps += 1;
                }
                (process, steps, automaton.is_halted())
            }));
        }
        drop(tx);
        for handle in handles {
            let (process, steps, done) = handle.join().expect("worker thread panicked");
            steps_per_process[process.index()] = steps;
            halted[process.index()] = done;
        }
    });
    let wall = start.elapsed();

    let mut decisions = DecisionSet::new();
    let mut arrival_order = Vec::new();
    while let Ok((process, decision)) = rx.try_recv() {
        decisions.record(process, decision);
        arrival_order.push((process, decision));
    }

    ThreadedReport {
        decisions,
        arrival_order,
        steps_per_process,
        halted,
        metrics: memory.metrics(),
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{Spinner, ToyWriter};

    #[test]
    fn threaded_writers_all_decide() {
        let automata: Vec<ToyWriter> = (0..4).map(|i| ToyWriter::new(i, i as u64 * 10)).collect();
        let report = run_threaded(automata, ThreadedConfig::default());
        assert!(report.all_halted());
        assert_eq!(report.decisions.deciders(1), 4);
        assert_eq!(report.arrival_order.len(), 4);
        assert_eq!(report.metrics.total_ops(), 8);
    }

    #[test]
    fn step_budget_bounds_spinners() {
        let automata = vec![Spinner::new(0), Spinner::new(0)];
        let report = run_threaded(automata, ThreadedConfig::with_step_budget(50));
        assert!(!report.all_halted());
        assert!(report.steps_per_process.iter().all(|s| *s == 50));
    }

    #[test]
    fn staggered_start_still_collects_all_decisions() {
        let automata: Vec<ToyWriter> = (0..3).map(|i| ToyWriter::new(i, i as u64)).collect();
        let config = ThreadedConfig::default().staggered(Duration::from_millis(1));
        let report = run_threaded(automata, config);
        assert!(report.all_halted());
        assert_eq!(report.decisions.deciders(1), 3);
    }

    #[test]
    fn seeded_spawn_order_is_a_deterministic_permutation() {
        for n in [1usize, 2, 5, 8] {
            for seed in [0u64, 1, 42, u64::MAX] {
                let order = spawn_order(n, seed);
                assert_eq!(order, spawn_order(n, seed), "order not deterministic");
                let mut sorted = order.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "not a permutation");
            }
        }
        // Seed 0 preserves the natural order; some other seed must not.
        assert_eq!(spawn_order(6, 0), vec![0, 1, 2, 3, 4, 5]);
        assert!(
            (1..50).any(|seed| spawn_order(6, seed) != spawn_order(6, 0)),
            "no seed ever shuffles"
        );
    }

    #[test]
    fn seeded_runs_keep_process_identities_and_report_wall_clock() {
        let automata: Vec<ToyWriter> = (0..4).map(|i| ToyWriter::new(i, i as u64 * 10)).collect();
        let report = run_threaded(automata, ThreadedConfig::default().seeded(7));
        assert!(report.all_halted());
        // Every process took its own two steps regardless of spawn order.
        assert_eq!(report.steps_per_process, vec![2, 2, 2, 2]);
        assert_eq!(report.total_steps(), 8);
        assert!(report.wall > Duration::ZERO);
        assert!(report.steps_per_sec() > 0.0);
    }
}
