//! Running automata on real OS threads.
//!
//! The same [`Automaton`] state machines that the deterministic simulator
//! drives can be driven by one OS thread per process against a
//! [`SharedMemory`]. This exercises genuine concurrency (the linearization
//! order is decided by the hardware and the OS scheduler rather than by a
//! simulated adversary), which is how the examples and several benchmarks run
//! the paper's algorithms.
//!
//! Two things differ from the simulator:
//!
//! * Termination is not guaranteed for obstruction-free algorithms when all
//!   `n` threads keep contending — that is the whole point of the paper's
//!   progress condition — so every thread gets a step budget and the report
//!   says who finished. Tests assert *safety* on threaded runs and assert
//!   termination only on runs whose contention pattern satisfies the
//!   m-obstruction hypothesis (e.g. solo or staggered runs).
//! * Decisions are collected through a channel, so the report also contains
//!   the wall-clock arrival order of decisions.

use crossbeam::channel;
use sa_memory::{MemoryMetrics, SharedMemory};
use sa_model::{Automaton, Decision, DecisionSet, MemoryLayout, ProcessId};
use std::fmt::Debug;
use std::time::Duration;

/// Configuration of a threaded run.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedConfig {
    /// Maximum number of shared-memory operations each thread may perform.
    pub max_steps_per_process: u64,
    /// Optional delay between consecutive thread starts; staggering starts
    /// reduces contention and in practice lets obstruction-free algorithms
    /// terminate quickly.
    pub stagger: Option<Duration>,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            max_steps_per_process: 1_000_000,
            stagger: None,
        }
    }
}

impl ThreadedConfig {
    /// A config with the given per-thread step budget.
    pub fn with_step_budget(max_steps_per_process: u64) -> Self {
        ThreadedConfig {
            max_steps_per_process,
            ..ThreadedConfig::default()
        }
    }

    /// Adds a stagger delay between thread starts.
    pub fn staggered(mut self, delay: Duration) -> Self {
        self.stagger = Some(delay);
        self
    }
}

/// The result of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// All decisions, grouped by instance.
    pub decisions: DecisionSet,
    /// Decisions in wall-clock arrival order.
    pub arrival_order: Vec<(ProcessId, Decision)>,
    /// Steps taken by each process.
    pub steps_per_process: Vec<u64>,
    /// Which processes halted (completed all their operations) within budget.
    pub halted: Vec<bool>,
    /// Shared-memory usage metrics.
    pub metrics: MemoryMetrics,
}

impl ThreadedReport {
    /// `true` if every process halted within its budget.
    pub fn all_halted(&self) -> bool {
        self.halted.iter().all(|h| *h)
    }
}

/// Runs one OS thread per automaton against a shared memory sized to the
/// union of the automata's layouts.
pub fn run_threaded<A>(automata: Vec<A>, config: ThreadedConfig) -> ThreadedReport
where
    A: Automaton + Send,
    A::Value: Clone + Eq + Debug + Send + Sync,
{
    let layout = automata
        .iter()
        .map(|a| a.layout())
        .fold(MemoryLayout::default(), |acc, l| acc.union(&l));
    let memory = SharedMemory::for_layout(&layout);
    let process_count = automata.len();
    let (tx, rx) = channel::unbounded::<(ProcessId, Decision)>();

    let mut steps_per_process = vec![0u64; process_count];
    let mut halted = vec![false; process_count];

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(process_count);
        for (index, mut automaton) in automata.into_iter().enumerate() {
            let process = ProcessId(index);
            let memory = &memory;
            let tx = tx.clone();
            if let Some(delay) = config.stagger {
                std::thread::sleep(delay);
            }
            let budget = config.max_steps_per_process;
            handles.push(scope.spawn(move || {
                let mut steps = 0u64;
                while steps < budget {
                    let Some(op) = automaton.poised() else {
                        break;
                    };
                    let response = memory.apply(process, op).unwrap_or_else(|e| {
                        panic!("{process} issued an out-of-layout operation: {e}")
                    });
                    for decision in automaton.apply(response) {
                        // The receiver outlives all senders inside the scope.
                        let _ = tx.send((process, decision));
                    }
                    steps += 1;
                }
                (process, steps, automaton.is_halted())
            }));
        }
        drop(tx);
        for handle in handles {
            let (process, steps, done) = handle.join().expect("worker thread panicked");
            steps_per_process[process.index()] = steps;
            halted[process.index()] = done;
        }
    });

    let mut decisions = DecisionSet::new();
    let mut arrival_order = Vec::new();
    while let Ok((process, decision)) = rx.try_recv() {
        decisions.record(process, decision);
        arrival_order.push((process, decision));
    }

    ThreadedReport {
        decisions,
        arrival_order,
        steps_per_process,
        halted,
        metrics: memory.metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{Spinner, ToyWriter};

    #[test]
    fn threaded_writers_all_decide() {
        let automata: Vec<ToyWriter> = (0..4).map(|i| ToyWriter::new(i, i as u64 * 10)).collect();
        let report = run_threaded(automata, ThreadedConfig::default());
        assert!(report.all_halted());
        assert_eq!(report.decisions.deciders(1), 4);
        assert_eq!(report.arrival_order.len(), 4);
        assert_eq!(report.metrics.total_ops(), 8);
    }

    #[test]
    fn step_budget_bounds_spinners() {
        let automata = vec![Spinner::new(0), Spinner::new(0)];
        let report = run_threaded(automata, ThreadedConfig::with_step_budget(50));
        assert!(!report.all_halted());
        assert!(report.steps_per_process.iter().all(|s| *s == 50));
    }

    #[test]
    fn staggered_start_still_collects_all_decisions() {
        let automata: Vec<ToyWriter> = (0..3).map(|i| ToyWriter::new(i, i as u64)).collect();
        let config = ThreadedConfig::default().staggered(Duration::from_millis(1));
        let report = run_threaded(automata, config);
        assert!(report.all_halted());
        assert_eq!(report.decisions.deciders(1), 3);
    }
}
