//! Checkers for the correctness properties of (repeated) k-set agreement.
//!
//! The paper's specification (Section 2.1) has three parts:
//!
//! * **Validity** — for every instance `i`, the outputs of instance `i` are a
//!   subset of the inputs proposed in instance `i`.
//! * **k-Agreement** — for every instance `i`, at most `k` distinct values
//!   are output.
//! * **m-Obstruction-Freedom** — in every execution in which at most `m`
//!   processes take infinitely many steps, every correct process completes
//!   each of its operations.
//!
//! The first two are safety properties checked against a [`DecisionSet`] and
//! an [`InputLog`]; the third is checked per run by asserting termination
//! under schedules that satisfy its hypothesis (see
//! [`check_obstruction_termination`]).

use sa_model::{DecisionSet, InputValue, InstanceId, ProcessId};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// The inputs proposed per instance, needed to check Validity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InputLog {
    by_instance: BTreeMap<InstanceId, BTreeSet<InputValue>>,
}

impl InputLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        InputLog::default()
    }

    /// Records that some process proposed `value` in `instance`.
    pub fn record(&mut self, instance: InstanceId, value: InputValue) {
        self.by_instance.entry(instance).or_default().insert(value);
    }

    /// Records the same per-instance inputs for a batch of processes indexed
    /// by position: `inputs[p][i]` is the input of process `p` in instance
    /// `i + 1`.
    pub fn record_matrix(&mut self, inputs: &[Vec<InputValue>]) {
        for per_process in inputs {
            for (i, v) in per_process.iter().enumerate() {
                self.record((i + 1) as InstanceId, *v);
            }
        }
    }

    /// The inputs of `instance`.
    pub fn inputs(&self, instance: InstanceId) -> BTreeSet<InputValue> {
        self.by_instance.get(&instance).cloned().unwrap_or_default()
    }

    /// Instances with at least one recorded input.
    pub fn instances(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.by_instance.keys().copied()
    }
}

/// A violation of the Validity property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidityViolation {
    /// The instance in which the violation occurred.
    pub instance: InstanceId,
    /// The output value that was never proposed in that instance.
    pub value: InputValue,
}

impl fmt::Display for ValidityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "validity violated in instance {}: value {} was output but never proposed",
            self.instance, self.value
        )
    }
}

impl Error for ValidityViolation {}

/// A violation of the k-Agreement property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgreementViolation {
    /// The instance in which the violation occurred.
    pub instance: InstanceId,
    /// The allowed number of distinct outputs.
    pub k: usize,
    /// The distinct values actually output.
    pub outputs: BTreeSet<InputValue>,
}

impl fmt::Display for AgreementViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "k-agreement violated in instance {}: {} distinct outputs {:?} exceed k = {}",
            self.instance,
            self.outputs.len(),
            self.outputs,
            self.k
        )
    }
}

impl Error for AgreementViolation {}

/// A violation of the termination obligation under an obstruction-compatible
/// schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TerminationViolation {
    /// Processes that were given steps but did not complete their operations.
    pub unfinished: Vec<ProcessId>,
    /// The number of steps the run was allowed.
    pub budget: u64,
}

impl fmt::Display for TerminationViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "termination violated: processes {:?} did not finish within {} steps under an m-obstruction schedule",
            self.unfinished, self.budget
        )
    }
}

impl Error for TerminationViolation {}

/// Checks Validity: every output of every instance was proposed in that
/// instance.
///
/// # Errors
///
/// Returns the first [`ValidityViolation`] found.
pub fn check_validity(inputs: &InputLog, decisions: &DecisionSet) -> Result<(), ValidityViolation> {
    for instance in decisions.instances() {
        let allowed = inputs.inputs(instance);
        for value in decisions.outputs(instance) {
            if !allowed.contains(&value) {
                return Err(ValidityViolation { instance, value });
            }
        }
    }
    Ok(())
}

/// Checks k-Agreement: at most `k` distinct outputs per instance.
///
/// # Errors
///
/// Returns the first [`AgreementViolation`] found.
pub fn check_k_agreement(k: usize, decisions: &DecisionSet) -> Result<(), AgreementViolation> {
    for instance in decisions.instances() {
        let outputs = decisions.outputs(instance);
        if outputs.len() > k {
            return Err(AgreementViolation {
                instance,
                k,
                outputs,
            });
        }
    }
    Ok(())
}

/// Checks that every process in `expected` halted, which is the obligation
/// imposed by m-obstruction-freedom on runs whose schedule eventually lets at
/// most `m` processes run (and gives them enough steps).
///
/// `halted[i]` states whether process `i` halted; `budget` is only used for
/// the error message.
///
/// # Errors
///
/// Returns a [`TerminationViolation`] listing the expected-but-unfinished
/// processes.
pub fn check_obstruction_termination(
    expected: &[ProcessId],
    halted: &[bool],
    budget: u64,
) -> Result<(), TerminationViolation> {
    let unfinished: Vec<ProcessId> = expected
        .iter()
        .copied()
        .filter(|p| !halted.get(p.index()).copied().unwrap_or(false))
        .collect();
    if unfinished.is_empty() {
        Ok(())
    } else {
        Err(TerminationViolation { unfinished, budget })
    }
}

/// A combined safety report for one execution.
#[derive(Debug, Clone, Default)]
pub struct SafetyReport {
    /// The validity violation, if any.
    pub validity: Option<ValidityViolation>,
    /// The agreement violation, if any.
    pub agreement: Option<AgreementViolation>,
}

impl SafetyReport {
    /// Checks both safety properties at once.
    pub fn evaluate(k: usize, inputs: &InputLog, decisions: &DecisionSet) -> Self {
        SafetyReport {
            validity: check_validity(inputs, decisions).err(),
            agreement: check_k_agreement(k, decisions).err(),
        }
    }

    /// `true` if neither property was violated.
    pub fn is_safe(&self) -> bool {
        self.validity.is_none() && self.agreement.is_none()
    }
}

impl fmt::Display for SafetyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.validity, &self.agreement) {
            (None, None) => write!(f, "safe: validity and k-agreement hold"),
            (Some(v), None) => write!(f, "{v}"),
            (None, Some(a)) => write!(f, "{a}"),
            (Some(v), Some(a)) => write!(f, "{v}; {a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_model::Decision;

    fn decisions(entries: &[(usize, InstanceId, InputValue)]) -> DecisionSet {
        let mut d = DecisionSet::new();
        for (p, i, v) in entries {
            d.record(ProcessId(*p), Decision::new(*i, *v));
        }
        d
    }

    #[test]
    fn validity_holds_when_outputs_were_proposed() {
        let mut inputs = InputLog::new();
        inputs.record(1, 10);
        inputs.record(1, 20);
        let d = decisions(&[(0, 1, 10), (1, 1, 20)]);
        assert!(check_validity(&inputs, &d).is_ok());
    }

    #[test]
    fn validity_catches_invented_values() {
        let mut inputs = InputLog::new();
        inputs.record(1, 10);
        let d = decisions(&[(0, 1, 99)]);
        let err = check_validity(&inputs, &d).unwrap_err();
        assert_eq!(err.instance, 1);
        assert_eq!(err.value, 99);
        assert!(err.to_string().contains("never proposed"));
    }

    #[test]
    fn validity_is_per_instance() {
        // Value 10 proposed only in instance 1 must not justify outputting it
        // in instance 2.
        let mut inputs = InputLog::new();
        inputs.record(1, 10);
        inputs.record(2, 20);
        let d = decisions(&[(0, 2, 10)]);
        assert!(check_validity(&inputs, &d).is_err());
    }

    #[test]
    fn agreement_holds_within_k() {
        let d = decisions(&[(0, 1, 1), (1, 1, 2), (2, 1, 2)]);
        assert!(check_k_agreement(2, &d).is_ok());
    }

    #[test]
    fn agreement_catches_too_many_values() {
        let d = decisions(&[(0, 1, 1), (1, 1, 2), (2, 1, 3)]);
        let err = check_k_agreement(2, &d).unwrap_err();
        assert_eq!(err.instance, 1);
        assert_eq!(err.outputs.len(), 3);
        assert!(err.to_string().contains("k = 2"));
    }

    #[test]
    fn agreement_checks_every_instance_independently() {
        let d = decisions(&[(0, 1, 1), (1, 2, 2), (2, 2, 3), (3, 2, 4)]);
        let err = check_k_agreement(2, &d).unwrap_err();
        assert_eq!(err.instance, 2);
    }

    #[test]
    fn termination_check_lists_unfinished() {
        let halted = vec![true, false, true];
        let expected: Vec<ProcessId> = ProcessId::all(3).collect();
        let err = check_obstruction_termination(&expected, &halted, 500).unwrap_err();
        assert_eq!(err.unfinished, vec![ProcessId(1)]);
        assert!(err.to_string().contains("500"));
        assert!(check_obstruction_termination(&[ProcessId(0)], &halted, 500).is_ok());
    }

    #[test]
    fn input_log_matrix_records_per_instance() {
        let mut log = InputLog::new();
        log.record_matrix(&[vec![1, 2], vec![3, 4]]);
        assert_eq!(log.inputs(1), BTreeSet::from([1, 3]));
        assert_eq!(log.inputs(2), BTreeSet::from([2, 4]));
        assert_eq!(log.instances().count(), 2);
    }

    #[test]
    fn safety_report_combines_checks() {
        let mut inputs = InputLog::new();
        inputs.record(1, 1);
        let ok = SafetyReport::evaluate(1, &inputs, &decisions(&[(0, 1, 1)]));
        assert!(ok.is_safe());
        assert!(ok.to_string().contains("safe"));
        let bad = SafetyReport::evaluate(1, &inputs, &decisions(&[(0, 1, 1), (1, 1, 7)]));
        assert!(!bad.is_safe());
        assert!(bad.validity.is_some());
        assert!(bad.agreement.is_some());
    }
}
