//! The out-of-core state store: self-describing segment files plus the
//! compact in-memory structures the explorers spill from.
//!
//! # On-disk format
//!
//! Every file written by this module is a **segment**: a fixed 24-byte
//! header, a sequence of length-prefixed records, and (for sealed segments)
//! a checksummed trailer. The header is
//!
//! ```text
//! magic    8 bytes  b"SASEG01\n"
//! kind     1 byte   what the records mean (see [`SegmentKind`])
//! framing  1 byte   1 = sealed, 2 = journal
//! reserved 6 bytes  zero
//! tag      8 bytes  caller-chosen identity (LE u64); e.g. a spec fingerprint
//! ```
//!
//! **Sealed** segments are written once and finished with a trailer
//! (`record count` u64, FNV-1a checksum over every record's length prefix
//! and bytes, tail magic `b"SASEGEND"`); a reader rejects any file whose
//! trailer does not check out. The explorers spill frozen BFS levels,
//! DFS stack slices and seen-set shards this way — the data is immutable
//! the moment it is written.
//!
//! **Journal** segments are append-only and crash-tolerant: each record is
//! `length` (u32 LE), `FNV-1a of the record bytes` (u64 LE), then the bytes,
//! and every append is flushed and synced. A reader stops at the first
//! record whose length or checksum does not check out — a torn tail from a
//! killed writer loses at most the record being written, never an earlier
//! one. Campaign checkpointing (`sweep run --checkpoint`) journals one
//! record per completed scenario on top of this framing.
//!
//! # In-memory structures
//!
//! * [`KeyTable`] — an open-addressed hash table holding bare 128-bit
//!   [`StateKey`]s at 16 bytes per slot (plus a 1-bit occupancy word), the
//!   compact seen-set representation. Its capacity is a pure function of
//!   how many keys were inserted, so the byte accounting it reports is
//!   deterministic at any worker count.
//! * [`ScheduleArena`] — frontier schedules delta-encoded against their
//!   parent: one `(parent, step)` node per retained state instead of a
//!   `Vec<ProcessId>` per frontier entry. Configurations themselves are
//!   never serialized: a schedule replayed from the initial executor *is*
//!   the configuration (the executor is deterministic), which is what lets
//!   spilled frontier records store schedules only.

use crate::explore::StateKey;
use sa_model::ProcessId;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The 8-byte magic every segment file starts with.
pub const SEGMENT_MAGIC: &[u8; 8] = b"SASEG01\n";
/// The 8-byte magic a sealed segment's trailer ends with.
pub const SEGMENT_TAIL_MAGIC: &[u8; 8] = b"SASEGEND";

const FRAMING_SEALED: u8 = 1;
const FRAMING_JOURNAL: u8 = 2;

/// What the records of a segment mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// A frozen explorer frontier (one schedule + orbit weight per record).
    FrontierLevel,
    /// A seen-set shard (one 16-byte [`StateKey`] per record).
    SeenShard,
    /// A campaign checkpoint journal (one completed scenario per record).
    CampaignJournal,
}

impl SegmentKind {
    fn code(self) -> u8 {
        match self {
            SegmentKind::FrontierLevel => 1,
            SegmentKind::SeenShard => 2,
            SegmentKind::CampaignJournal => 3,
        }
    }
}

/// 64-bit FNV-1a over a byte slice — the checksum both framings use.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn write_header(out: &mut impl Write, kind: SegmentKind, framing: u8, tag: u64) -> io::Result<()> {
    out.write_all(SEGMENT_MAGIC)?;
    out.write_all(&[kind.code(), framing, 0, 0, 0, 0, 0, 0])?;
    out.write_all(&tag.to_le_bytes())?;
    Ok(())
}

fn read_header(input: &mut impl Read, kind: SegmentKind, framing: u8) -> io::Result<u64> {
    let mut header = [0u8; 24];
    input.read_exact(&mut header)?;
    if &header[..8] != SEGMENT_MAGIC {
        return Err(corrupt("bad segment magic"));
    }
    if header[8] != kind.code() {
        return Err(corrupt("segment kind mismatch"));
    }
    if header[9] != framing {
        return Err(corrupt("segment framing mismatch"));
    }
    let mut tag = [0u8; 8];
    tag.copy_from_slice(&header[16..24]);
    Ok(u64::from_le_bytes(tag))
}

fn corrupt(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

/// Writes a sealed segment: records are appended, then [`SegmentWriter::finish`]
/// seals the file with a checksummed trailer. A file without a valid trailer
/// is rejected by [`read_segment`], so a crashed writer can never be mistaken
/// for a complete spill.
#[derive(Debug)]
pub struct SegmentWriter {
    out: BufWriter<File>,
    records: u64,
    checksum: u64,
}

impl SegmentWriter {
    /// Creates (truncating) a sealed segment at `path`.
    pub fn create(path: &Path, kind: SegmentKind, tag: u64) -> io::Result<SegmentWriter> {
        let mut out = BufWriter::new(File::create(path)?);
        write_header(&mut out, kind, FRAMING_SEALED, tag)?;
        Ok(SegmentWriter {
            out,
            records: 0,
            checksum: 0xcbf2_9ce4_8422_2325,
        })
    }

    /// Appends one length-prefixed record.
    pub fn append(&mut self, record: &[u8]) -> io::Result<()> {
        let len = u32::try_from(record.len()).map_err(|_| corrupt("record too large"))?;
        self.out.write_all(&len.to_le_bytes())?;
        self.out.write_all(record)?;
        for &b in len.to_le_bytes().iter().chain(record) {
            self.checksum ^= b as u64;
            self.checksum = self.checksum.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.records += 1;
        Ok(())
    }

    /// The number of records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Writes the trailer and flushes the file; the segment is now readable.
    pub fn finish(mut self) -> io::Result<()> {
        self.out.write_all(&self.records.to_le_bytes())?;
        self.out.write_all(&self.checksum.to_le_bytes())?;
        self.out.write_all(SEGMENT_TAIL_MAGIC)?;
        self.out.flush()?;
        self.out.get_ref().sync_data()
    }
}

/// Reads a sealed segment back, verifying header, record count, checksum and
/// tail magic. Returns the header tag and the records.
pub fn read_segment(path: &Path, kind: SegmentKind) -> io::Result<(u64, Vec<Vec<u8>>)> {
    let mut input = BufReader::new(File::open(path)?);
    let tag = read_header(&mut input, kind, FRAMING_SEALED)?;
    let mut body = Vec::new();
    input.read_to_end(&mut body)?;
    if body.len() < 24 {
        return Err(corrupt("sealed segment truncated before trailer"));
    }
    let trailer = body.split_off(body.len() - 24);
    if &trailer[16..24] != SEGMENT_TAIL_MAGIC {
        return Err(corrupt("bad segment tail magic"));
    }
    let declared_records = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
    let declared_checksum = u64::from_le_bytes(trailer[8..16].try_into().expect("8 bytes"));
    if fnv1a64(&body) != declared_checksum {
        return Err(corrupt("sealed segment checksum mismatch"));
    }
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < body.len() {
        if body.len() - offset < 4 {
            return Err(corrupt("record length prefix truncated"));
        }
        let len =
            u32::from_le_bytes(body[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        offset += 4;
        if body.len() - offset < len {
            return Err(corrupt("record body truncated"));
        }
        records.push(body[offset..offset + len].to_vec());
        offset += len;
    }
    if records.len() as u64 != declared_records {
        return Err(corrupt("sealed segment record count mismatch"));
    }
    Ok((tag, records))
}

/// An append-only, crash-tolerant journal segment.
///
/// Open with [`Journal::open`], which replays the valid prefix (tolerating a
/// torn tail from a killed writer) and positions the writer after it; every
/// [`Journal::append`] is flushed and synced before it returns, so a record
/// that was appended is durable.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, validating the header
    /// against `kind` and `tag`, and returns the records of the valid
    /// prefix together with the positioned writer. A torn tail (partial
    /// record from a killed writer) is truncated away; a tag mismatch — a
    /// journal written for a *different* campaign — is an error.
    pub fn open(path: &Path, kind: SegmentKind, tag: u64) -> io::Result<(Vec<Vec<u8>>, Journal)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            write_header(&mut file, kind, FRAMING_JOURNAL, tag)?;
            file.sync_data()?;
            return Ok((Vec::new(), Journal { file }));
        }
        let mut contents = Vec::new();
        file.read_to_end(&mut contents)?;
        if contents.len() < 24 {
            return Err(corrupt("journal truncated inside its header"));
        }
        let found_tag = read_header(&mut &contents[..24], kind, FRAMING_JOURNAL)?;
        if found_tag != tag {
            return Err(corrupt("journal tag mismatch: different campaign"));
        }
        let mut records = Vec::new();
        let mut valid = 24usize;
        loop {
            let rest = &contents[valid..];
            if rest.len() < 12 {
                break;
            }
            let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
            let checksum = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
            if rest.len() - 12 < len {
                break;
            }
            let body = &rest[12..12 + len];
            if fnv1a64(body) != checksum {
                break;
            }
            records.push(body.to_vec());
            valid += 12 + len;
        }
        // Drop the torn tail (if any) so subsequent appends extend a valid
        // prefix instead of interleaving with garbage.
        file.set_len(valid as u64)?;
        file.seek(SeekFrom::Start(valid as u64))?;
        Ok((records, Journal { file }))
    }

    /// Appends one record durably (flushed and synced before returning).
    pub fn append(&mut self, record: &[u8]) -> io::Result<()> {
        let len = u32::try_from(record.len()).map_err(|_| corrupt("record too large"))?;
        let mut framed = Vec::with_capacity(12 + record.len());
        framed.extend_from_slice(&len.to_le_bytes());
        framed.extend_from_slice(&fnv1a64(record).to_le_bytes());
        framed.extend_from_slice(record);
        self.file.write_all(&framed)?;
        self.file.sync_data()
    }
}

/// An open-addressed hash table of bare 128-bit [`StateKey`]s: 16 bytes per
/// slot plus a one-bit occupancy word, versus the ~48 bytes per entry of a
/// `HashSet<StateKey>`. Keys are already uniform 128-bit hashes, so the
/// first half indexes directly (linear probing, power-of-two capacity).
///
/// Capacity grows by doubling when the table passes 3/4 load, so the
/// allocated size — and therefore the byte accounting the explorers report —
/// is a pure function of the number of keys inserted, never of insertion
/// order or worker count.
#[derive(Debug, Clone)]
pub struct KeyTable {
    slots: Vec<[u64; 2]>,
    occupied: Vec<u64>,
    len: usize,
}

const KEY_TABLE_MIN_CAPACITY: usize = 16;

impl Default for KeyTable {
    fn default() -> Self {
        KeyTable::new()
    }
}

impl KeyTable {
    /// An empty table at the minimum capacity.
    pub fn new() -> KeyTable {
        KeyTable {
            slots: vec![[0, 0]; KEY_TABLE_MIN_CAPACITY],
            occupied: vec![0; KEY_TABLE_MIN_CAPACITY.div_ceil(64)],
            len: 0,
        }
    }

    /// The number of keys held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no key is held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn is_occupied(&self, slot: usize) -> bool {
        self.occupied[slot / 64] & (1 << (slot % 64)) != 0
    }

    fn probe(&self, key: &StateKey) -> Result<usize, usize> {
        let mask = self.slots.len() - 1;
        let parts = key.parts();
        let mut slot = (parts[0] as usize) & mask;
        loop {
            if !self.is_occupied(slot) {
                return Err(slot);
            }
            if self.slots[slot] == parts {
                return Ok(slot);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// `true` if `key` is in the table.
    pub fn contains(&self, key: &StateKey) -> bool {
        self.probe(key).is_ok()
    }

    /// Inserts `key`; returns `true` if it was not already present.
    pub fn insert(&mut self, key: StateKey) -> bool {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        match self.probe(&key) {
            Ok(_) => false,
            Err(slot) => {
                self.slots[slot] = key.parts();
                self.occupied[slot / 64] |= 1 << (slot % 64);
                self.len += 1;
                true
            }
        }
    }

    fn grow(&mut self) {
        let capacity = self.slots.len() * 2;
        let old_slots = std::mem::replace(&mut self.slots, vec![[0, 0]; capacity]);
        let old_occupied = std::mem::replace(&mut self.occupied, vec![0; capacity.div_ceil(64)]);
        self.len = 0;
        for (slot, parts) in old_slots.into_iter().enumerate() {
            if old_occupied[slot / 64] & (1 << (slot % 64)) != 0 {
                self.insert(StateKey::from_parts(parts));
            }
        }
    }

    /// The keys held, in slot order. The order depends on insertion history,
    /// so callers must treat the result as an unordered set.
    pub fn iter(&self) -> impl Iterator<Item = StateKey> + '_ {
        (0..self.slots.len())
            .filter(|slot| self.is_occupied(*slot))
            .map(|slot| StateKey::from_parts(self.slots[slot]))
    }

    /// The bytes this table allocates right now — equal to
    /// [`KeyTable::bytes_for_len`] of its length, by construction.
    pub fn allocated_bytes(&self) -> u64 {
        (self.slots.len() * std::mem::size_of::<[u64; 2]>() + self.occupied.len() * 8) as u64
    }

    /// The bytes a table holding `len` keys allocates — a pure function of
    /// `len` (capacity doubles past 3/4 load from a fixed minimum), which is
    /// what keeps the explorers' byte accounting deterministic.
    pub fn bytes_for_len(len: u64) -> u64 {
        let mut capacity = KEY_TABLE_MIN_CAPACITY as u64;
        while (len + 1) * 4 > capacity * 3 {
            capacity *= 2;
        }
        capacity * std::mem::size_of::<[u64; 2]>() as u64 + capacity.div_ceil(64) * 8
    }
}

/// The root sentinel of a [`ScheduleArena`]: the empty schedule.
pub const SCHEDULE_ROOT: u32 = u32::MAX;

/// Frontier schedules delta-encoded against their parent: node `i` holds
/// `(parent, step)`, so a frontier entry references its whole schedule as
/// one `u32` and the arena stores each retained state's schedule in 8 bytes
/// — instead of a fresh `Vec<ProcessId>` per entry. Nodes are append-only
/// and committed single-threaded at the explorer's level barriers, so
/// workers can materialize schedules from a shared reference while the
/// arena is frozen.
#[derive(Debug, Clone, Default)]
pub struct ScheduleArena {
    nodes: Vec<(u32, u32)>,
}

impl ScheduleArena {
    /// An empty arena (only [`SCHEDULE_ROOT`] exists).
    pub fn new() -> ScheduleArena {
        ScheduleArena::default()
    }

    /// Commits the schedule `parent ++ [step]` and returns its node id.
    ///
    /// # Panics
    ///
    /// Panics with `schedule arena overflow` if the arena outgrows `u32`
    /// node ids (4 billion frontier entries is past any in-memory budget
    /// this explorer runs under) — or if a step's process index does: a
    /// pathological index must fail loudly here, not alias a small one
    /// after a silent `as u32` truncation.
    pub fn push(&mut self, parent: u32, step: ProcessId) -> u32 {
        let id = u32::try_from(self.nodes.len()).expect("schedule arena overflow");
        assert!(id != SCHEDULE_ROOT, "schedule arena overflow");
        let step = u32::try_from(step.index()).expect("schedule arena overflow");
        self.nodes.push((parent, step));
        id
    }

    /// The number of committed nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if no node has been committed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The full schedule of `node`, root first.
    pub fn materialize(&self, node: u32) -> Vec<ProcessId> {
        let mut steps = Vec::new();
        let mut current = node;
        while current != SCHEDULE_ROOT {
            let (parent, step) = self.nodes[current as usize];
            steps.push(ProcessId(step as usize));
            current = parent;
        }
        steps.reverse();
        steps
    }

    /// The schedule length of `node` without materializing it.
    pub fn depth(&self, node: u32) -> usize {
        let mut depth = 0;
        let mut current = node;
        while current != SCHEDULE_ROOT {
            depth += 1;
            current = self.nodes[current as usize].0;
        }
        depth
    }

    /// The bytes the arena allocates (length-based, deterministic).
    pub fn approx_bytes(&self) -> u64 {
        (self.nodes.len() * std::mem::size_of::<(u32, u32)>()) as u64
    }
}

/// Bytes preceding the steps of a frontier record: orbit weight, sleep
/// mask, revisit flag + owed mask, backtrack mask, done mask, schedule
/// length.
const FRONTIER_RECORD_HEADER: usize = 8 + 8 + 1 + 8 + 8 + 8 + 4;

/// One spilled frontier entry of the serial explorer, as serialized by
/// [`encode_frontier_record`]. Configurations are **not** part of the
/// record — replaying the schedule from the initial executor reconstructs
/// them exactly, because the executor is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FrontierRecord {
    /// The schedule reaching the entry's configuration.
    pub schedule: Vec<ProcessId>,
    /// The orbit-size lower bound of the configuration.
    pub orbit_lower: u64,
    /// The sleep mask the entry arrived with (its own labeling).
    pub sleep: u64,
    /// `Some(owed)` for an owed-revisit entry (see sleep-set reduction).
    pub expand: Option<u64>,
    /// The DPOR backtrack set at freeze time (0 outside persistent-set
    /// runs). Additions made while the frame is on disk are merged back by
    /// union when it thaws.
    pub backtrack: u64,
    /// The DPOR done set at freeze time (0 outside persistent-set runs).
    pub done: u64,
}

/// Encodes one spilled frontier record: the orbit-size lower bound, the
/// entry's sleep mask, its owed-revisit mask (flag byte then mask — see
/// sleep-set reduction in the serial explorer), the DPOR backtrack and done
/// sets, the schedule length, then the schedule's steps as `u32`s.
///
/// # Panics
///
/// Panics with `schedule arena overflow` if a step's process index
/// outgrows the record's `u32` step width — the same contract as
/// [`ScheduleArena::push`], and for the same reason: silently truncating
/// would alias a pathological index with a small one.
pub fn encode_frontier_record(entry: &FrontierRecord) -> Vec<u8> {
    let mut record = Vec::with_capacity(FRONTIER_RECORD_HEADER + entry.schedule.len() * 4);
    record.extend_from_slice(&entry.orbit_lower.to_le_bytes());
    record.extend_from_slice(&entry.sleep.to_le_bytes());
    record.push(entry.expand.is_some() as u8);
    record.extend_from_slice(&entry.expand.unwrap_or(0).to_le_bytes());
    record.extend_from_slice(&entry.backtrack.to_le_bytes());
    record.extend_from_slice(&entry.done.to_le_bytes());
    record.extend_from_slice(&(entry.schedule.len() as u32).to_le_bytes());
    for step in &entry.schedule {
        let step = u32::try_from(step.index()).expect("schedule arena overflow");
        record.extend_from_slice(&step.to_le_bytes());
    }
    record
}

/// Decodes a record written by [`encode_frontier_record`].
///
/// Step indices are validated against the cell's `process_count` before a
/// `ProcessId` is built from them: the bytes come from disk, and a
/// corrupt-but-checksum-colliding (or hand-edited) segment must surface as
/// a clean `corrupt segment` error here instead of an out-of-range process
/// id that panics deep inside replay.
pub fn decode_frontier_record(record: &[u8], process_count: usize) -> io::Result<FrontierRecord> {
    if record.len() < FRONTIER_RECORD_HEADER {
        return Err(corrupt("corrupt segment: frontier record too short"));
    }
    let orbit_lower = u64::from_le_bytes(record[..8].try_into().expect("8 bytes"));
    let sleep = u64::from_le_bytes(record[8..16].try_into().expect("8 bytes"));
    let expand = match record[16] {
        0 => None,
        1 => Some(u64::from_le_bytes(
            record[17..25].try_into().expect("8 bytes"),
        )),
        _ => return Err(corrupt("corrupt segment: revisit flag out of range")),
    };
    let backtrack = u64::from_le_bytes(record[25..33].try_into().expect("8 bytes"));
    let done = u64::from_le_bytes(record[33..41].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(record[41..45].try_into().expect("4 bytes")) as usize;
    if record.len() != FRONTIER_RECORD_HEADER + len * 4 {
        return Err(corrupt("corrupt segment: frontier record length mismatch"));
    }
    let schedule = (0..len)
        .map(|i| {
            let at = FRONTIER_RECORD_HEADER + i * 4;
            let step = u32::from_le_bytes(record[at..at + 4].try_into().expect("4 bytes")) as usize;
            if step >= process_count {
                return Err(corrupt("corrupt segment: schedule step out of range"));
            }
            Ok(ProcessId(step))
        })
        .collect::<io::Result<Vec<ProcessId>>>()?;
    Ok(FrontierRecord {
        schedule,
        orbit_lower,
        sleep,
        expand,
        backtrack,
        done,
    })
}

static SPILL_DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A process-unique temporary directory for explorer spill segments,
/// removed (best-effort) on drop. Spill files are pure caches of in-flight
/// search state — nothing in them outlives the exploration that wrote them.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Creates a fresh spill directory under the system temp dir.
    pub fn fresh() -> io::Result<SpillDir> {
        let path = std::env::temp_dir().join(format!(
            "sa-explore-spill-{}-{}",
            std::process::id(),
            SPILL_DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path)?;
        Ok(SpillDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A file path inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sa-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn sealed_segment_roundtrips_records_and_tag() {
        let path = temp_path("sealed-roundtrip.seg");
        let mut writer = SegmentWriter::create(&path, SegmentKind::FrontierLevel, 77).unwrap();
        let records: Vec<Vec<u8>> = vec![b"one".to_vec(), Vec::new(), vec![0u8; 300]];
        for record in &records {
            writer.append(record).unwrap();
        }
        assert_eq!(writer.records(), 3);
        writer.finish().unwrap();
        let (tag, read) = read_segment(&path, SegmentKind::FrontierLevel).unwrap();
        assert_eq!(tag, 77);
        assert_eq!(read, records);
    }

    #[test]
    fn sealed_segment_rejects_corruption_and_wrong_kind() {
        let path = temp_path("sealed-corrupt.seg");
        let mut writer = SegmentWriter::create(&path, SegmentKind::SeenShard, 0).unwrap();
        writer.append(b"payload").unwrap();
        writer.finish().unwrap();
        // Wrong kind.
        assert!(read_segment(&path, SegmentKind::FrontierLevel).is_err());
        // Flip a byte in the body: the checksum must catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[30] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_segment(&path, SegmentKind::SeenShard).is_err());
        // A writer that never finished (no trailer) is rejected too.
        let unfinished = temp_path("sealed-unfinished.seg");
        let mut writer = SegmentWriter::create(&unfinished, SegmentKind::SeenShard, 0).unwrap();
        writer.append(b"half").unwrap();
        drop(writer);
        assert!(read_segment(&unfinished, SegmentKind::SeenShard).is_err());
    }

    #[test]
    fn journal_appends_reopen_and_tolerate_torn_tails() {
        let path = temp_path("journal-torn.seg");
        let _ = std::fs::remove_file(&path);
        let (records, mut journal) = Journal::open(&path, SegmentKind::CampaignJournal, 9).unwrap();
        assert!(records.is_empty());
        journal.append(b"alpha").unwrap();
        journal.append(b"beta").unwrap();
        drop(journal);
        // Simulate a crash mid-append: a partial record at the tail.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(&[1, 2, 3]);
        std::fs::write(&path, &bytes).unwrap();
        let (records, mut journal) = Journal::open(&path, SegmentKind::CampaignJournal, 9).unwrap();
        assert_eq!(records, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        // Appending after recovery extends the valid prefix.
        journal.append(b"gamma").unwrap();
        drop(journal);
        let (records, _) = Journal::open(&path, SegmentKind::CampaignJournal, 9).unwrap();
        assert_eq!(
            records,
            vec![b"alpha".to_vec(), b"beta".to_vec(), b"gamma".to_vec()]
        );
        // A different tag is a different campaign: refuse to resume.
        assert!(Journal::open(&path, SegmentKind::CampaignJournal, 10).is_err());
    }

    #[test]
    fn key_table_inserts_contains_and_grows_deterministically() {
        let mut table = KeyTable::new();
        // Start at 1: index 0 would map to the all-zero key, which the tail
        // of this test wants absent.
        let keys: Vec<StateKey> = (1..=1000u64)
            .map(|i| StateKey::from_parts([i.wrapping_mul(0x9E37_79B9_7F4A_7C15), i]))
            .collect();
        for key in &keys {
            assert!(!table.contains(key));
            assert!(table.insert(*key));
            assert!(!table.insert(*key), "double insert must report existing");
            assert!(table.contains(key));
        }
        assert_eq!(table.len(), 1000);
        assert_eq!(table.allocated_bytes(), KeyTable::bytes_for_len(1000));
        let mut collected: Vec<[u64; 2]> = table.iter().map(|k| k.parts()).collect();
        collected.sort_unstable();
        let mut expected: Vec<[u64; 2]> = keys.iter().map(|k| k.parts()).collect();
        expected.sort_unstable();
        assert_eq!(collected, expected);
        // The zero key is a valid key (occupancy is a bitset, not a
        // sentinel value).
        let zero = StateKey::from_parts([0, 0]);
        assert!(!table.contains(&zero));
        assert!(table.insert(zero));
        assert!(table.contains(&zero));
    }

    #[test]
    fn key_table_byte_accounting_is_a_function_of_len_only() {
        // Insert the same key set in two different orders: identical
        // allocation, as the determinism guarantee requires.
        let keys: Vec<StateKey> = (0..500u64)
            .map(|i| StateKey::from_parts([i.rotate_left(17) ^ 0xABCD, i]))
            .collect();
        let mut forward = KeyTable::new();
        let mut backward = KeyTable::new();
        for key in &keys {
            forward.insert(*key);
        }
        for key in keys.iter().rev() {
            backward.insert(*key);
        }
        assert_eq!(forward.allocated_bytes(), backward.allocated_bytes());
        assert!(KeyTable::bytes_for_len(500) >= 500 * 16);
    }

    #[test]
    fn schedule_arena_materializes_delta_encoded_chains() {
        let mut arena = ScheduleArena::new();
        assert_eq!(arena.materialize(SCHEDULE_ROOT), Vec::<ProcessId>::new());
        let a = arena.push(SCHEDULE_ROOT, ProcessId(2));
        let b = arena.push(a, ProcessId(0));
        let c = arena.push(b, ProcessId(1));
        let sibling = arena.push(a, ProcessId(3));
        assert_eq!(
            arena.materialize(c),
            vec![ProcessId(2), ProcessId(0), ProcessId(1)]
        );
        assert_eq!(arena.materialize(sibling), vec![ProcessId(2), ProcessId(3)]);
        assert_eq!(arena.depth(c), 3);
        assert_eq!(arena.depth(SCHEDULE_ROOT), 0);
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.approx_bytes(), 32);
    }

    #[test]
    fn frontier_records_roundtrip() {
        let entry = FrontierRecord {
            schedule: vec![ProcessId(0), ProcessId(5), ProcessId(2)],
            orbit_lower: 42,
            sleep: 0b101,
            expand: Some(0b010),
            backtrack: 0b110,
            done: 0b100,
        };
        let record = encode_frontier_record(&entry);
        assert_eq!(decode_frontier_record(&record, 6).unwrap(), entry);
        let empty = FrontierRecord::default();
        assert_eq!(
            decode_frontier_record(&encode_frontier_record(&empty), 1).unwrap(),
            empty
        );
        assert!(decode_frontier_record(&record[..5], 6).is_err());
        let mut bad_flag = record.clone();
        bad_flag[16] = 7;
        assert!(decode_frontier_record(&bad_flag, 6).is_err());
    }

    #[test]
    fn doctored_segment_steps_fail_as_corrupt_not_panic() {
        // A sealed segment whose checksum is intact but whose step bytes
        // name a process the cell does not have: the decoder must refuse
        // with a clean `corrupt segment` io::Error instead of building an
        // out-of-range ProcessId that panics deep inside replay. The
        // pre-fix decoder did `ProcessId(step as usize)` on whatever the
        // disk said.
        let entry = FrontierRecord {
            schedule: vec![ProcessId(1), ProcessId(999)],
            orbit_lower: 1,
            ..FrontierRecord::default()
        };
        let path = temp_path("doctored-frontier");
        let mut writer = SegmentWriter::create(&path, SegmentKind::FrontierLevel, 0).unwrap();
        writer.append(&encode_frontier_record(&entry)).unwrap();
        writer.finish().unwrap();
        let (_tag, records) = read_segment(&path, SegmentKind::FrontierLevel).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(records.len(), 1);
        // A 1000-process cell accepts the record; a 3-process cell must not.
        assert!(decode_frontier_record(&records[0], 1000).is_ok());
        let err = decode_frontier_record(&records[0], 3).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("corrupt segment"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn spill_dirs_are_unique_and_removed_on_drop() {
        let a = SpillDir::fresh().unwrap();
        let b = SpillDir::fresh().unwrap();
        assert_ne!(a.path(), b.path());
        let path = a.path().to_path_buf();
        std::fs::write(a.file("probe.seg"), b"x").unwrap();
        assert!(path.exists());
        drop(a);
        assert!(!path.exists(), "spill dir must be removed on drop");
    }
}
