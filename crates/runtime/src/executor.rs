//! The deterministic step executor.
//!
//! An [`Executor`] owns a set of automata (one per process) and a
//! [`SimMemory`]; each call to [`Executor::step`] lets one process perform
//! its poised shared-memory operation atomically. [`Executor::run`] drives
//! the whole execution under a [`Scheduler`].
//!
//! Because `Executor` is `Clone` (whenever the automata are), adversaries can
//! snapshot a configuration, explore alternative futures and backtrack —
//! which is exactly what the Theorem 2 covering construction and the bounded
//! explorer need.

use crate::explore::{ExploreConfig, ReductionMode, SymmetryMode};
use crate::parallel::ParallelExploreConfig;
use crate::schedule::{Scheduler, SchedulerView};
use crate::threaded::ThreadedConfig;
use crate::trace::{Trace, TraceEvent};
use sa_memory::{MemoryMetrics, SimMemory};
use sa_model::{Automaton, DecisionSet, IdRelabeling, MemoryLayout, Op, ProcessId, StepOutcome};
use std::fmt::Debug;

/// Which execution backend drives a system of automata — the third axis of
/// an execution besides the algorithm and the adversary.
///
/// The same [`Automaton`](sa_model::Automaton) state machines can be driven
/// four ways, and the paper's safety properties must hold under all of
/// them:
///
/// * [`Backend::Scheduled`] — the deterministic simulator: one atomic step
///   at a time under an adversarial [`Scheduler`], fully reproducible.
/// * [`Backend::Threaded`] — one OS thread per process against the
///   lock-based shared memory: the hardware and the OS scheduler decide the
///   linearization order, so this measures *real* contention and is
///   reproducible only up to interleaving.
/// * [`Backend::Explore`] — the bounded exhaustive explorer: **every**
///   interleaving of a (tiny) configuration is checked, which subsumes any
///   single adversary.
/// * [`Backend::ParallelExplore`] — the same exhaustive check spread over a
///   work-stealing worker pool, with byte-identical results at any thread
///   count; the backend that pushes exhaustive verification past the cells
///   the serial explorer can finish.
///
/// Crash failures are *not* a backend: they are an adversary property
/// (see [`crate::CrashScheduler`]) layered over [`Backend::Scheduled`],
/// orthogonal to this axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Deterministic simulation under an adversarial scheduler.
    #[default]
    Scheduled,
    /// One OS thread per process against real shared memory.
    Threaded(ThreadedConfig),
    /// Bounded exhaustive exploration of every interleaving.
    Explore(ExploreConfig),
    /// Work-stealing exhaustive exploration of every interleaving.
    ParallelExplore(ParallelExploreConfig),
    /// A long-running batched agreement service under an open-loop load
    /// generator (implemented by the `sa-serve` crate; this variant only
    /// carries its knobs so the unified executor can dispatch to it).
    Serve(ServeOptions),
    /// Goal-directed search over schedule space for lower-bound witness
    /// structures — covering configurations and block-write extensions —
    /// instead of safety violations (implemented by the `sa-search` crate;
    /// this variant only carries its knobs so the unified executor can
    /// dispatch to it).
    AdversarySearch(SearchConfig),
}

impl Backend {
    /// A short identifier used in records and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Scheduled => "scheduled",
            Backend::Threaded(_) => "threaded",
            Backend::Explore(_) => "explore",
            Backend::ParallelExplore(_) => "parallel-explore",
            Backend::Serve(_) => "serve",
            Backend::AdversarySearch(_) => "adversary-search",
        }
    }
}

/// The witness structure a [`Backend::AdversarySearch`] run hunts for.
///
/// Both goals come from the Theorem 2 lower-bound machinery: a *covering
/// configuration* has `p` processes each poised to write, covering `p`
/// pairwise-distinct locations; a *block write* additionally requires that
/// every covered location already holds a value, so executing the poised
/// writes back-to-back obliterates recorded information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SearchGoal {
    /// A configuration where as many processes as possible are poised to
    /// write pairwise-distinct locations.
    #[default]
    Covering,
    /// A covering configuration whose covered locations have all been
    /// written before, so the block write obliterates information.
    BlockWrite,
}

impl SearchGoal {
    /// A short identifier used in specs, records and reports.
    pub fn label(&self) -> &'static str {
        match self {
            SearchGoal::Covering => "covering",
            SearchGoal::BlockWrite => "block-write",
        }
    }

    /// Parses a goal label; returns `None` for unknown names.
    pub fn parse(text: &str) -> Option<SearchGoal> {
        match text.trim() {
            "covering" => Some(SearchGoal::Covering),
            "block-write" => Some(SearchGoal::BlockWrite),
            _ => None,
        }
    }

    /// Every goal, in a fixed order (spec/CLI enumeration).
    pub fn all() -> [SearchGoal; 2] {
        [SearchGoal::Covering, SearchGoal::BlockWrite]
    }
}

/// The knobs of a [`Backend::AdversarySearch`] run: which witness structure
/// to hunt for, how hard, and over how many worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// The witness structure being searched for.
    pub goal: SearchGoal,
    /// Stop as soon as a witness touching (written or covered) at least
    /// this many locations is found; `0` searches the whole budgeted space
    /// for the best witness.
    pub target_registers: usize,
    /// Maximum schedule depth (BFS radius) to search.
    pub max_depth: u64,
    /// Maximum number of distinct configurations to visit.
    pub max_states: u64,
    /// Worker threads expanding each BFS level (results are byte-identical
    /// at any thread count).
    pub threads: usize,
    /// Canonicalize configurations up to process-id orbits before
    /// deduplication, exactly as the exhaustive explorers do.
    pub symmetry: SymmetryMode,
    /// Prune commuting interleavings with sleep sets, exactly as the
    /// exhaustive explorers do. Verdicts are unaffected (sleep sets visit
    /// every reachable configuration); only the expansion count shrinks.
    pub reduction: ReductionMode,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            goal: SearchGoal::Covering,
            target_registers: 0,
            max_depth: 64,
            max_states: 1_000_000,
            threads: 1,
            symmetry: SymmetryMode::Off,
            reduction: ReductionMode::Off,
        }
    }
}

/// The clock a [`Backend::Serve`] run is driven by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeClock {
    /// A deterministic virtual clock: one tick per millisecond of modelled
    /// time, execution cost modelled as one microsecond per algorithm step.
    /// Reports are reproducible bit-for-bit at any shard count.
    #[default]
    Virtual,
    /// The real wall clock: ticks are paced by `std::thread::sleep` and
    /// latencies are measured with `std::time::Instant`. Reports are *not*
    /// reproducible.
    Wall,
}

impl ServeClock {
    /// A short identifier used in reports and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            ServeClock::Virtual => "virtual",
            ServeClock::Wall => "wall",
        }
    }
}

/// How a [`Backend::Serve`] load generator picks proposal values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeLoad {
    /// Every proposal carries a globally unique value.
    #[default]
    Distinct,
    /// Every proposal carries the same value.
    Uniform(u64),
    /// Seed-derived values drawn from `0..universe`.
    Random {
        /// The number of distinct values to draw from.
        universe: u64,
    },
}

/// The knobs of a [`Backend::Serve`] run: a service sharded over
/// `shards` worker threads, batching proposals from `clients` simulated
/// clients arriving open-loop at `rate` proposals per tick for
/// `duration_ticks` ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Worker threads executing batches (at least 1).
    pub shards: usize,
    /// A batch is cut as soon as it holds this many proposals (at least 1).
    pub batch_max: usize,
    /// The number of simulated clients issuing proposals.
    pub clients: usize,
    /// Proposals issued per clock tick (open-loop, at least 1).
    pub rate: u64,
    /// How many ticks the load generator runs before the graceful drain.
    pub duration_ticks: u64,
    /// Virtual (deterministic) or wall (real time) clock.
    pub clock: ServeClock,
    /// How proposal values are generated.
    pub load: ServeLoad,
    /// Seed for the load generator's value stream.
    pub seed: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            shards: 2,
            batch_max: 8,
            clients: 64,
            rate: 8,
            duration_ticks: 1000,
            clock: ServeClock::Virtual,
            load: ServeLoad::Distinct,
            seed: 0,
        }
    }
}

/// Why an execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every process halted (completed all its configured `Propose`s).
    AllHalted,
    /// The step budget was exhausted before every process halted.
    StepLimit,
    /// The scheduler declined to schedule anybody else.
    SchedulerExhausted,
}

/// Configuration of an execution run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Maximum number of steps to execute.
    pub max_steps: u64,
    /// Whether to record a full [`Trace`].
    pub record_trace: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_steps: 1_000_000,
            record_trace: false,
        }
    }
}

impl RunConfig {
    /// A config with the given step budget and no trace.
    pub fn with_max_steps(max_steps: u64) -> Self {
        RunConfig {
            max_steps,
            ..RunConfig::default()
        }
    }

    /// Enables trace recording.
    pub fn traced(mut self) -> Self {
        self.record_trace = true;
        self
    }
}

/// The summary of an execution run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Why the run stopped.
    pub stop: StopReason,
    /// Total number of steps executed.
    pub steps: u64,
    /// Decisions recorded, grouped by instance.
    pub decisions: DecisionSet,
    /// Steps taken by each process.
    pub steps_per_process: Vec<u64>,
    /// Which processes had halted when the run stopped.
    pub halted: Vec<bool>,
    /// Shared-memory usage metrics of the run.
    pub metrics: MemoryMetrics,
    /// The execution trace, if recording was enabled.
    pub trace: Option<Trace>,
}

impl RunReport {
    /// `true` if every process halted.
    pub fn all_halted(&self) -> bool {
        self.halted.iter().all(|h| *h)
    }

    /// The processes that had **not** halted when the run stopped.
    pub fn unfinished(&self) -> Vec<ProcessId> {
        self.halted
            .iter()
            .enumerate()
            .filter(|(_, h)| !**h)
            .map(|(i, _)| ProcessId(i))
            .collect()
    }
}

/// Drives a set of automata against a simulated shared memory, one atomic
/// step at a time.
///
/// ```
/// use sa_runtime::{Executor, RoundRobin, RunConfig};
/// use sa_runtime::toy::ToyWriter;
///
/// let automata = vec![ToyWriter::new(0, 10), ToyWriter::new(1, 20)];
/// let mut exec = Executor::new(automata);
/// let report = exec.run(&mut RoundRobin::new(), RunConfig::default());
/// assert!(report.all_halted());
/// assert_eq!(report.decisions.deciders(1), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Executor<A: Automaton> {
    automata: Vec<A>,
    memory: SimMemory<A::Value>,
    decisions: DecisionSet,
    steps: u64,
    steps_per_process: Vec<u64>,
}

impl<A: Automaton> Executor<A>
where
    A::Value: Clone + Eq + Debug,
{
    /// Creates an executor for the given automata. The shared memory is
    /// sized to the union of the automata's declared layouts.
    pub fn new(automata: Vec<A>) -> Self {
        let layout = automata
            .iter()
            .map(|a| a.layout())
            .fold(MemoryLayout::default(), |acc, l| acc.union(&l));
        Executor::with_layout(automata, &layout)
    }

    /// Creates an executor with an explicit memory layout (it must be at
    /// least as large as every automaton's declared layout).
    pub fn with_layout(automata: Vec<A>, layout: &MemoryLayout) -> Self {
        let n = automata.len();
        Executor {
            automata,
            memory: SimMemory::for_layout(layout),
            decisions: DecisionSet::new(),
            steps: 0,
            steps_per_process: vec![0; n],
        }
    }

    /// The number of processes.
    pub fn process_count(&self) -> usize {
        self.automata.len()
    }

    /// The processes that have not halted.
    pub fn runnable(&self) -> Vec<ProcessId> {
        self.automata
            .iter()
            .enumerate()
            .filter(|(_, a)| !a.is_halted())
            .map(|(i, _)| ProcessId(i))
            .collect()
    }

    /// `true` once every process has halted.
    pub fn all_halted(&self) -> bool {
        self.automata.iter().all(|a| a.is_halted())
    }

    /// The operation `process` is poised to perform, if it has not halted.
    pub fn poised(&self, process: ProcessId) -> Option<Op<A::Value>> {
        self.automata.get(process.index())?.poised()
    }

    /// A reference to the automaton of `process`.
    ///
    /// # Panics
    ///
    /// Panics if the process id is out of range.
    pub fn automaton(&self, process: ProcessId) -> &A {
        &self.automata[process.index()]
    }

    /// The shared memory (e.g. for metric inspection).
    pub fn memory(&self) -> &SimMemory<A::Value> {
        &self.memory
    }

    /// The decisions recorded so far.
    pub fn decisions(&self) -> &DecisionSet {
        &self.decisions
    }

    /// The number of steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Lets `process` perform its poised operation. Returns `None` if the
    /// process has already halted.
    ///
    /// # Panics
    ///
    /// Panics if the process issues an operation outside the memory layout —
    /// that is a protocol bug, not a schedulable condition.
    pub fn step(&mut self, process: ProcessId) -> Option<StepOutcome> {
        let automaton = self.automata.get_mut(process.index())?;
        let op = automaton.poised()?;
        let op_kind = op.kind();
        let response = self
            .memory
            .apply(process, op)
            .unwrap_or_else(|e| panic!("{process} issued an out-of-layout operation: {e}"));
        let decisions = automaton.apply(response);
        self.decisions
            .record_all(process, decisions.iter().copied());
        self.steps += 1;
        self.steps_per_process[process.index()] += 1;
        Some(StepOutcome {
            op_kind,
            halted: self.automata[process.index()].is_halted(),
            decisions,
        })
    }

    /// A deterministic, length-based estimate of the bytes this
    /// configuration occupies: the executor shell, the automata (inline
    /// size plus each one's [`Automaton::approx_heap_bytes`]), the shared
    /// memory contents (slots plus each occupied value's
    /// [`Automaton::value_heap_bytes`]) and the decision set.
    ///
    /// This is the deep-size hook behind [`Exploration::approx_bytes`]
    /// (crate::Exploration::approx_bytes) and the explorers' spill
    /// triggers. It is computed from lengths, never capacities, so two
    /// equal configurations always report the same bytes — regardless of
    /// how they were produced, which worker produced them, or whether they
    /// were round-tripped through a spill segment.
    pub fn approx_deep_bytes(&self) -> u64 {
        let mut bytes = std::mem::size_of::<Executor<A>>()
            + self.automata.len() * std::mem::size_of::<A>()
            + self.steps_per_process.len() * std::mem::size_of::<u64>();
        for automaton in &self.automata {
            bytes += automaton.approx_heap_bytes();
        }
        bytes += self.memory.approx_heap_bytes(|v| A::value_heap_bytes(v));
        bytes += self.decisions.approx_heap_bytes();
        bytes as u64
    }

    /// The image of this configuration under a process-id relabeling,
    /// applied **consistently**: the automaton of old slot `p` moves to
    /// slot `relabel(p)` with its embedded ids rewritten
    /// ([`Automaton::relabeled`]), every shared-memory value is rewritten
    /// ([`Automaton::relabel_value`]), decisions and per-process step
    /// counts move with their process. Memory *locations* stay put.
    ///
    /// This is the group action the symmetry-reduced explorers quotient
    /// by; it is exposed so the orbit-soundness tests (and diagnostics) can
    /// apply concrete permutations and compare state keys.
    ///
    /// # Panics
    ///
    /// Panics if `relabel` is not a bijection on exactly this executor's
    /// process set.
    pub fn permuted(&self, relabel: &IdRelabeling) -> Executor<A>
    where
        A: Clone,
    {
        let n = self.automata.len();
        assert!(
            relabel.len() == n && relabel.is_bijection(),
            "permuting {n} processes needs a bijection on 0..{n}"
        );
        let mut automata: Vec<Option<A>> = vec![None; n];
        let mut steps_per_process = vec![0u64; n];
        for old in 0..n {
            let new = relabel.apply(ProcessId(old)).index();
            automata[new] = Some(self.automata[old].relabeled(relabel));
            steps_per_process[new] = self.steps_per_process[old];
        }
        Executor {
            automata: automata
                .into_iter()
                .map(|a| a.expect("a bijection fills every slot"))
                .collect(),
            memory: self
                .memory
                .canonicalized(|value| A::relabel_value(value, relabel)),
            decisions: self.decisions.relabeled(relabel),
            steps: self.steps,
            steps_per_process,
        }
    }

    /// Runs the execution under `scheduler` until every process halts, the
    /// step budget is exhausted, or the scheduler gives up.
    pub fn run<S: Scheduler + ?Sized>(
        &mut self,
        scheduler: &mut S,
        config: RunConfig,
    ) -> RunReport {
        let mut trace = config.record_trace.then(Trace::new);
        let stop = loop {
            if self.all_halted() {
                break StopReason::AllHalted;
            }
            if self.steps >= config.max_steps {
                break StopReason::StepLimit;
            }
            let runnable = self.runnable();
            let view = SchedulerView {
                step: self.steps,
                runnable: &runnable,
            };
            let Some(pick) = scheduler.next(&view) else {
                break StopReason::SchedulerExhausted;
            };
            let step_number = self.steps;
            let wrote = if trace.is_some() {
                self.poised(pick).and_then(|op| op.footprint().write_cell())
            } else {
                None
            };
            let Some(outcome) = self.step(pick) else {
                // The scheduler picked a halted process; treat as exhaustion
                // to avoid spinning forever.
                break StopReason::SchedulerExhausted;
            };
            if let Some(trace) = trace.as_mut() {
                trace.push(TraceEvent {
                    step: step_number,
                    process: pick,
                    op: outcome.op_kind,
                    wrote,
                    decisions: outcome.decisions.clone(),
                });
            }
        };
        RunReport {
            stop,
            steps: self.steps,
            decisions: self.decisions.clone(),
            steps_per_process: self.steps_per_process.clone(),
            halted: self.automata.iter().map(|a| a.is_halted()).collect(),
            metrics: self.memory.metrics().clone(),
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{RoundRobin, ScriptedScheduler, SoloScheduler};
    use crate::toy::{RacyConsensus, Spinner, ToyWriter};

    #[test]
    fn run_to_completion_under_round_robin() {
        let automata = vec![
            ToyWriter::new(0, 1),
            ToyWriter::new(1, 2),
            ToyWriter::new(2, 3),
        ];
        let mut exec = Executor::new(automata);
        let report = exec.run(&mut RoundRobin::new(), RunConfig::default());
        assert_eq!(report.stop, StopReason::AllHalted);
        assert!(report.all_halted());
        assert_eq!(report.decisions.deciders(1), 3);
        assert_eq!(report.steps, 6);
        assert_eq!(report.steps_per_process, vec![2, 2, 2]);
        assert!(report.unfinished().is_empty());
    }

    #[test]
    fn step_limit_is_enforced() {
        let automata = vec![Spinner::new(0), Spinner::new(0)];
        let mut exec = Executor::new(automata);
        let report = exec.run(&mut RoundRobin::new(), RunConfig::with_max_steps(25));
        assert_eq!(report.stop, StopReason::StepLimit);
        assert_eq!(report.steps, 25);
        assert!(!report.all_halted());
        assert_eq!(report.unfinished().len(), 2);
    }

    #[test]
    fn scheduler_exhaustion_is_reported() {
        let automata = vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)];
        let mut exec = Executor::new(automata);
        // A script that only runs p0; after p0 halts nothing remains.
        let mut sched = ScriptedScheduler::new(vec![ProcessId(0); 10]);
        let report = exec.run(&mut sched, RunConfig::default());
        assert_eq!(report.stop, StopReason::SchedulerExhausted);
        assert_eq!(report.decisions.deciders(1), 1);
        assert_eq!(report.unfinished(), vec![ProcessId(1)]);
    }

    #[test]
    fn racy_automaton_disagrees_under_a_bad_schedule() {
        // Both processes read before either writes: they decide different values.
        let automata = vec![
            RacyConsensus::new(ProcessId(0), 10),
            RacyConsensus::new(ProcessId(1), 20),
        ];
        let mut exec = Executor::new(automata);
        let mut sched =
            ScriptedScheduler::new(vec![ProcessId(0), ProcessId(1), ProcessId(0), ProcessId(1)]);
        let report = exec.run(&mut sched, RunConfig::default());
        assert_eq!(report.decisions.distinct_outputs(1), 2);
    }

    #[test]
    fn racy_automaton_agrees_under_solo_then_solo() {
        let automata = vec![
            RacyConsensus::new(ProcessId(0), 10),
            RacyConsensus::new(ProcessId(1), 20),
        ];
        let mut exec = Executor::new(automata);
        let mut sched =
            ScriptedScheduler::new(vec![ProcessId(0), ProcessId(0), ProcessId(1), ProcessId(1)]);
        let report = exec.run(&mut sched, RunConfig::default());
        assert_eq!(report.decisions.distinct_outputs(1), 1);
        assert_eq!(report.decisions.outputs(1).into_iter().next(), Some(10));
    }

    #[test]
    fn manual_stepping_and_inspection() {
        let automata = vec![ToyWriter::new(0, 5)];
        let mut exec = Executor::new(automata);
        assert_eq!(exec.process_count(), 1);
        assert!(exec.poised(ProcessId(0)).is_some());
        let outcome = exec.step(ProcessId(0)).unwrap();
        assert!(!outcome.halted);
        let outcome = exec.step(ProcessId(0)).unwrap();
        assert!(outcome.halted);
        assert_eq!(outcome.decisions.len(), 1);
        assert!(exec.step(ProcessId(0)).is_none());
        assert!(exec.all_halted());
        assert_eq!(exec.steps(), 2);
        assert_eq!(exec.memory().metrics().total_ops(), 2);
    }

    #[test]
    fn trace_recording_captures_schedule() {
        let automata = vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)];
        let mut exec = Executor::new(automata);
        let report = exec.run(&mut RoundRobin::new(), RunConfig::default().traced());
        let trace = report.trace.expect("trace was requested");
        assert_eq!(trace.len() as u64, report.steps);
        assert_eq!(trace.decisions().len(), 2);
    }

    #[test]
    fn solo_run_starves_other_processes() {
        let automata = vec![ToyWriter::new(0, 1), ToyWriter::new(1, 2)];
        let mut exec = Executor::new(automata);
        let report = exec.run(&mut SoloScheduler::new(ProcessId(1)), RunConfig::default());
        assert_eq!(report.steps_per_process[0], 0);
        assert!(report.halted[1]);
        assert!(!report.halted[0]);
    }

    #[test]
    fn executor_clone_allows_branching_executions() {
        let automata = vec![
            RacyConsensus::new(ProcessId(0), 10),
            RacyConsensus::new(ProcessId(1), 20),
        ];
        let mut exec = Executor::new(automata);
        exec.step(ProcessId(0));
        // Branch A: p0 finishes alone first.
        let mut branch_a = exec.clone();
        branch_a.step(ProcessId(0));
        branch_a.step(ProcessId(1));
        branch_a.step(ProcessId(1));
        // Branch B: p1 reads before p0 writes.
        let mut branch_b = exec;
        branch_b.step(ProcessId(1));
        branch_b.step(ProcessId(0));
        branch_b.step(ProcessId(1));
        assert_eq!(branch_a.decisions().distinct_outputs(1), 1);
        assert_eq!(branch_b.decisions().distinct_outputs(1), 2);
    }
}
