//! Input workload generators for tests, experiments and benchmarks.
//!
//! A workload assigns to every process the sequence of values it will propose
//! in successive instances of repeated set agreement. All generators are
//! deterministic given their seed, so experiments are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sa_model::{InputValue, InstanceId};

/// A workload: `inputs[p][t - 1]` is the value process `p` proposes in its
/// `t`-th instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    inputs: Vec<Vec<InputValue>>,
}

impl Workload {
    /// Builds a workload from an explicit matrix.
    pub fn from_matrix(inputs: Vec<Vec<InputValue>>) -> Self {
        Workload { inputs }
    }

    /// Every process proposes a distinct value in every instance — the
    /// hardest workload for agreement, since the full input diversity is
    /// available.
    ///
    /// Process `p` proposes `instance * 1000 + p` in instance `instance`.
    pub fn all_distinct(processes: usize, instances: usize) -> Self {
        let inputs = (0..processes)
            .map(|p| {
                (1..=instances)
                    .map(|t| (t as InputValue) * 1000 + p as InputValue)
                    .collect()
            })
            .collect();
        Workload { inputs }
    }

    /// Every process proposes the same value in every instance — the easiest
    /// workload; useful as a sanity check (the only valid output is that
    /// value).
    pub fn uniform(processes: usize, instances: usize, value: InputValue) -> Self {
        Workload {
            inputs: vec![vec![value; instances]; processes],
        }
    }

    /// Random values drawn from `0..universe`, reproducibly from `seed`.
    pub fn random(processes: usize, instances: usize, universe: u64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs = (0..processes)
            .map(|_| (0..instances).map(|_| rng.gen_range(0..universe)).collect())
            .collect();
        Workload { inputs }
    }

    /// The number of processes.
    pub fn processes(&self) -> usize {
        self.inputs.len()
    }

    /// The number of instances each process proposes in.
    pub fn instances(&self) -> usize {
        self.inputs.first().map_or(0, |v| v.len())
    }

    /// The input of process `p` in instance `t` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if the process or instance is out of range.
    pub fn input(&self, process: usize, instance: InstanceId) -> InputValue {
        self.inputs[process][(instance - 1) as usize]
    }

    /// The full input sequence of process `p`.
    pub fn sequence(&self, process: usize) -> &[InputValue] {
        &self.inputs[process]
    }

    /// The underlying matrix, indexable as `matrix[p][t - 1]`.
    pub fn matrix(&self) -> &[Vec<InputValue>] {
        &self.inputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_distinct_has_no_collisions_within_an_instance() {
        let w = Workload::all_distinct(8, 5);
        assert_eq!(w.processes(), 8);
        assert_eq!(w.instances(), 5);
        for t in 1..=5u64 {
            let mut values: Vec<_> = (0..8).map(|p| w.input(p, t)).collect();
            values.sort_unstable();
            values.dedup();
            assert_eq!(values.len(), 8, "instance {t} has duplicate inputs");
        }
    }

    #[test]
    fn uniform_always_returns_the_same_value() {
        let w = Workload::uniform(4, 3, 7);
        for p in 0..4 {
            for t in 1..=3u64 {
                assert_eq!(w.input(p, t), 7);
            }
        }
    }

    #[test]
    fn random_is_reproducible_and_bounded() {
        let a = Workload::random(5, 4, 100, 42);
        let b = Workload::random(5, 4, 100, 42);
        let c = Workload::random(5, 4, 100, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        for p in 0..5 {
            for v in a.sequence(p) {
                assert!(*v < 100);
            }
        }
    }

    #[test]
    fn from_matrix_round_trips() {
        let w = Workload::from_matrix(vec![vec![1, 2], vec![3, 4]]);
        assert_eq!(w.input(1, 2), 4);
        assert_eq!(w.matrix()[0], vec![1, 2]);
    }
}
