//! Bench for the Section 4 comparison: the paper's algorithm (n − k + 2
//! components for m = 1) against the `2(n − k)`-component prior work \[4\]
//! and the trivial `n`-single-writer-register baseline.
//!
//! The paper's claim is about space, which `sa_bench::baseline_rows`
//! tabulates; this bench additionally compares the time to decision of the
//! three implementations under identical obstruction schedules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sa_bench::{baseline_rows, obstruction_adversary};
use sa_model::Params;
use set_agreement::{Algorithm, Scenario};
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_comparison");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    let triples = [(8, 1, 3), (10, 1, 3), (12, 1, 4)];
    for (n, m, k) in triples {
        let params = Params::new(n, m, k).expect("valid triple");
        for algorithm in [
            Algorithm::OneShot,
            Algorithm::WideBaseline,
            Algorithm::FullInformation,
        ] {
            let id = BenchmarkId::new(algorithm.label(), format!("n{n}_k{k}"));
            group.bench_function(id, |b| {
                b.iter(|| {
                    let report = Scenario::new(params)
                        .algorithm(algorithm)
                        .adversary(obstruction_adversary(params, 11))
                        .max_steps(4_000_000)
                        .run();
                    assert!(report.safety.is_safe());
                    black_box(report.steps)
                });
            });
        }
    }
    group.finish();

    for (n, m, k) in triples {
        let params = Params::new(n, m, k).expect("valid triple");
        for row in baseline_rows(params, 11) {
            eprintln!(
                "baseline_comparison: {:<24} n={n} m={m} k={k} registers={} steps={}",
                row.algorithm.label(),
                row.registers,
                row.steps
            );
        }
    }
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
