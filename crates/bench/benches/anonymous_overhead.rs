//! Bench for the cost of anonymity (Theorem 11 vs Theorem 8): the anonymous
//! algorithm uses quadratically many registers — `(m+1)(n−k) + m² + 1` —
//! where the non-anonymous one uses `min(n + 2m − k, n)`, and it pays extra
//! scan work per decision. This bench runs both on identical workloads and
//! schedules so the register and time overheads can be read side by side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sa_bench::obstruction_adversary;
use sa_model::Params;
use set_agreement::{Algorithm, Scenario};
use std::hint::black_box;

fn bench_anonymous_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("anonymous_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    let triples = [(6, 1, 3), (8, 2, 3), (10, 2, 4)];
    for (n, m, k) in triples {
        let params = Params::new(n, m, k).expect("valid triple");
        for (label, algorithm) in [
            ("named-oneshot", Algorithm::OneShot),
            ("anonymous-oneshot", Algorithm::AnonymousOneShot),
            ("named-repeated", Algorithm::Repeated(2)),
            ("anonymous-repeated", Algorithm::AnonymousRepeated(2)),
        ] {
            let id = BenchmarkId::new(label, format!("n{n}_m{m}_k{k}"));
            group.bench_function(id, |b| {
                b.iter(|| {
                    let report = Scenario::new(params)
                        .algorithm(algorithm)
                        .adversary(obstruction_adversary(params, 23))
                        .max_steps(5_000_000)
                        .run();
                    assert!(report.safety.is_safe());
                    black_box(report.steps)
                });
            });
        }
        // Report the register-count ratio once per triple.
        let named = Algorithm::Repeated(2).register_bound(params);
        let anonymous = Algorithm::AnonymousRepeated(2).register_bound(params);
        eprintln!(
            "anonymous_overhead: n={n} m={m} k={k} named_registers={named} anonymous_registers={anonymous} ratio={:.2}",
            anonymous as f64 / named as f64
        );
    }
    group.finish();
}

criterion_group!(benches, bench_anonymous_overhead);
criterion_main!(benches);
