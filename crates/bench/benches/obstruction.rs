//! Bench for the m-obstruction-freedom characterization (Section 2.1): time
//! to decision as a function of how many processes keep running after the
//! contention phase. Termination is guaranteed exactly for survivor counts
//! up to `m`; the series produced by `contention_sweep` shows the crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sa_model::Params;
use set_agreement::{Adversary, Algorithm, Scenario};
use std::hint::black_box;

fn bench_obstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("obstruction");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    let params = Params::new(6, 3, 3).expect("valid triple");
    for survivors in 1..=3usize {
        let id = BenchmarkId::new("figure3-oneshot", format!("survivors{survivors}"));
        group.bench_function(id, |b| {
            b.iter(|| {
                let report = Scenario::new(params)
                    .algorithm(Algorithm::OneShot)
                    .adversary(Adversary::Obstruction {
                        contention_steps: 120,
                        survivors,
                        seed: 13,
                    })
                    .max_steps(2_000_000)
                    .run();
                assert!(report.safety.is_safe());
                assert!(report.survivors_decided);
                black_box(report.steps)
            });
        });
    }

    // Contrast with full contention (round-robin), where termination is not
    // guaranteed but safety must still hold.
    group.bench_function("figure3-oneshot/round-robin", |b| {
        b.iter(|| {
            let report = Scenario::new(params)
                .algorithm(Algorithm::OneShot)
                .adversary(Adversary::RoundRobin)
                .max_steps(50_000)
                .run();
            assert!(report.safety.is_safe());
            black_box(report.steps)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_obstruction);
criterion_main!(benches);
