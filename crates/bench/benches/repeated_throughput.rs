//! Bench for repeated set agreement (Figure 4): instances decided per unit of
//! simulated work, the quantity that matters for the universal-construction
//! motivation the paper opens with. Sweeps the number of instances and the
//! obstruction degree m.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sa_bench::obstruction_adversary;
use sa_model::Params;
use set_agreement::{Algorithm, Scenario};
use std::hint::black_box;

fn bench_repeated_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("repeated_throughput");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    for instances in [1usize, 4, 16] {
        for (n, m, k) in [(6, 1, 3), (6, 2, 3)] {
            let params = Params::new(n, m, k).expect("valid triple");
            group.throughput(Throughput::Elements(instances as u64));
            let id = BenchmarkId::new(
                format!("figure4_n{n}_m{m}_k{k}"),
                format!("instances{instances}"),
            );
            group.bench_function(id, |b| {
                b.iter(|| {
                    let report = Scenario::new(params)
                        .algorithm(Algorithm::Repeated(instances))
                        .adversary(obstruction_adversary(params, 17))
                        .max_steps(10_000_000)
                        .run();
                    assert!(report.safety.is_safe());
                    assert!(report.survivors_decided);
                    black_box(report.steps)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_repeated_throughput);
criterion_main!(benches);
