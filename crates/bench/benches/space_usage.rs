//! Bench for the Figure 1 upper bounds: runs each algorithm under the
//! obstruction adversary across a small parameter sweep and (a) times the
//! run, (b) asserts the measured space never exceeds the paper's bound.
//!
//! Regenerates the upper-bound cells of Figure 1; the tabular form is
//! produced by `cargo run -p sa-bench --bin figure1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sa_bench::{obstruction_adversary, space_rows};
use sa_model::Params;
use set_agreement::{Algorithm, Scenario};
use std::hint::black_box;

fn bench_space_usage(c: &mut Criterion) {
    let mut group = c.benchmark_group("space_usage");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    let triples = [(6, 1, 3), (6, 2, 3), (8, 2, 3), (10, 2, 4)];
    let algorithms = [
        Algorithm::OneShot,
        Algorithm::Repeated(2),
        Algorithm::AnonymousOneShot,
    ];

    for (n, m, k) in triples {
        let params = Params::new(n, m, k).expect("valid triple");
        for algorithm in algorithms {
            let id = BenchmarkId::new(algorithm.label(), format!("n{n}_m{m}_k{k}"));
            group.bench_function(id, |b| {
                b.iter(|| {
                    let report = Scenario::new(params)
                        .algorithm(algorithm)
                        .adversary(obstruction_adversary(params, 7))
                        .max_steps(2_000_000)
                        .run();
                    assert!(report.safety.is_safe());
                    assert!(
                        report.locations_written <= algorithm.component_bound(params),
                        "space exceeded the declared component bound"
                    );
                    black_box(report.steps)
                });
            });
        }
    }
    group.finish();

    // Emit the measured-space table once so bench logs double as a report.
    for (n, m, k) in triples {
        let params = Params::new(n, m, k).expect("valid triple");
        for row in space_rows(params, 7) {
            eprintln!(
                "space_usage: {:<24} n={n} m={m} k={k} bound={} measured={}",
                row.algorithm.label(),
                row.bound,
                row.measured
            );
        }
    }
}

criterion_group!(benches, bench_space_usage);
criterion_main!(benches);
