//! Shared measurement helpers for the `sa-bench` harness.
//!
//! The paper's evaluation artifact is **Figure 1**, a table of register
//! bounds; the rest of its claims are qualitative comparisons (the new
//! algorithm improves the `2(n−k)` registers of prior work, anonymity costs a
//! quadratic rather than linear number of registers, termination holds
//! whenever at most `m` processes keep running). This crate turns each of
//! those claims into a measured table or series:
//!
//! * [`figure1_report`] — the four cells of Figure 1 next to the space the
//!   implementations *actually* use (distinct locations written).
//! * [`space_rows`] — per-algorithm space measurements across a parameter
//!   sweep (bench `space_usage`, binary `figure1`).
//! * [`baseline_rows`] — Figure 3 vs the `2(n−k)` baseline vs the trivial
//!   `n`-register baseline (bench `baseline_comparison`).
//! * [`obstruction_series`] — steps to decision as a function of how many
//!   processes keep running (bench `obstruction`, binary `contention_sweep`).
//! * [`lower_bound_report`] — the covering and cloning attacks across widths
//!   (binary `lower_bound_witness`).
//!
//! Every helper returns plain data structures so the Criterion benches, the
//! report binaries and the integration tests all consume the same code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sa_lowerbound::bounds::{Figure1, Naming, Setting};
use sa_lowerbound::cloning::clone_attack_sweep;
use sa_lowerbound::covering::{width_sweep_one_shot, AttackOutcome};
use sa_model::Params;
use set_agreement::{Adversary, Algorithm, Scenario, ScenarioReport};
use std::fmt::Write as _;

/// The default obstruction adversary used for space and termination
/// measurements: heavy contention followed by `m` survivors.
pub fn obstruction_adversary(params: Params, seed: u64) -> Adversary {
    Adversary::Obstruction {
        contention_steps: 50 * params.n() as u64,
        survivors: params.m(),
        seed,
    }
}

/// Runs one scenario of `algorithm` for `params` under the standard
/// obstruction adversary.
pub fn run_measured(params: Params, algorithm: Algorithm, seed: u64) -> ScenarioReport {
    Scenario::new(params)
        .algorithm(algorithm)
        .adversary(obstruction_adversary(params, seed))
        .max_steps(5_000_000)
        .run()
}

/// One row of a space-usage table: an algorithm, its paper bound and the
/// space it actually used in a measured run.
#[derive(Debug, Clone)]
pub struct SpaceRow {
    /// The parameters of the run.
    pub params: Params,
    /// The algorithm measured.
    pub algorithm: Algorithm,
    /// The paper's register bound for this algorithm.
    pub bound: usize,
    /// The number of base objects the implementation declares (snapshot
    /// components plus registers); the measured space can never exceed this.
    pub component_bound: usize,
    /// Distinct base objects written during the run.
    pub measured: usize,
    /// The measured footprint converted to the paper's register accounting
    /// ([`Algorithm::register_equivalent`]): snapshot components beyond `n`
    /// are charged `n` single-writer registers for the non-anonymous
    /// algorithms. This is the column comparable against `bound`.
    pub measured_registers: usize,
    /// Steps executed.
    pub steps: u64,
    /// Whether the run satisfied validity and k-agreement.
    pub safe: bool,
    /// Whether every obligated survivor decided.
    pub survivors_decided: bool,
}

/// Measures the space actually used by each of the paper's algorithms (and
/// both baselines where applicable) for one parameter triple.
pub fn space_rows(params: Params, seed: u64) -> Vec<SpaceRow> {
    let mut algorithms = vec![
        Algorithm::OneShot,
        Algorithm::Repeated(2),
        Algorithm::AnonymousOneShot,
        Algorithm::AnonymousRepeated(2),
        Algorithm::FullInformation,
    ];
    // The wide baseline only exists where 2(n − k) meets the Figure 3 minimum.
    if 2 * (params.n() - params.k()) >= params.snapshot_components() {
        algorithms.push(Algorithm::WideBaseline);
    }
    algorithms
        .into_iter()
        .map(|algorithm| {
            let report = run_measured(params, algorithm, seed);
            SpaceRow {
                params,
                algorithm,
                bound: algorithm.register_bound(params),
                component_bound: algorithm.component_bound(params),
                measured: report.locations_written,
                measured_registers: register_equivalent_of(&report),
                steps: report.steps,
                safe: report.safety.is_safe(),
                survivors_decided: report.survivors_decided,
            }
        })
        .collect()
}

/// The register-accounted footprint of a completed run: distinct registers
/// written plus snapshot components charged per
/// [`Algorithm::register_equivalent`].
pub fn register_equivalent_of(report: &ScenarioReport) -> usize {
    let registers = report.metrics.registers_written();
    let components = report.locations_written - registers;
    report
        .algorithm
        .register_equivalent(report.params, registers, components)
}

/// Renders Figure 1 for `params` with a "measured" column next to each upper
/// bound: the **register-accounted** footprint of the corresponding
/// algorithm in a run under the obstruction adversary.
///
/// The snapshot-backed implementations legitimately write up to `n + 2m − k`
/// snapshot components, which exceeds the register upper bound
/// `min(n + 2m − k, n)` whenever `n + 2m − k > n`. The paper closes that gap
/// by implementing the snapshot from `n` single-writer registers, so the
/// measured column applies the same accounting
/// ([`Algorithm::register_equivalent`]); entries where the conversion fired
/// are marked `*` and footnoted with the raw component count.
pub fn figure1_report(params: Params, seed: u64) -> String {
    let table = Figure1::for_params(params);
    let oneshot = run_measured(params, Algorithm::OneShot, seed);
    let repeated = run_measured(params, Algorithm::Repeated(2), seed);
    let anon_oneshot = run_measured(params, Algorithm::AnonymousOneShot, seed);
    let anon_repeated = run_measured(params, Algorithm::AnonymousRepeated(2), seed);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 1 — {} (n={}, m={}, k={})",
        params,
        params.n(),
        params.m(),
        params.k()
    );
    let _ = writeln!(out, "{:<16} {:<34} {:<34}", "", "Repeated", "One-shot");
    let mut footnotes: Vec<String> = Vec::new();
    let mut render = |cell_lower: usize, cell_upper: usize, report: &ScenarioReport| {
        let raw = report.locations_written;
        let registers = register_equivalent_of(report);
        let marker = if registers != raw {
            footnotes.push(format!(
                "* {}: wrote {raw} snapshot components; charged min({raw}, n={}) = \
                 {registers} single-writer registers (Theorem 7 accounting)",
                report.algorithm.label(),
                report.params.n()
            ));
            "*"
        } else {
            " "
        };
        format!("lower {cell_lower:>3}  upper {cell_upper:>3}  measured {registers:>3}{marker}")
    };
    let na_rep = table.cell(Setting::Repeated, Naming::NonAnonymous);
    let na_one = table.cell(Setting::OneShot, Naming::NonAnonymous);
    let an_rep = table.cell(Setting::Repeated, Naming::Anonymous);
    let an_one = table.cell(Setting::OneShot, Naming::Anonymous);
    let repeated_cell = render(na_rep.lower.registers, na_rep.upper.registers, &repeated);
    let oneshot_cell = render(na_one.lower.registers, na_one.upper.registers, &oneshot);
    let anon_repeated_cell = render(
        an_rep.lower.registers,
        an_rep.upper.registers,
        &anon_repeated,
    );
    let anon_oneshot_cell = render(
        an_one.lower.registers,
        an_one.upper.registers,
        &anon_oneshot,
    );
    let _ = writeln!(
        out,
        "{:<16} {:<34} {:<34}",
        "non-anonymous", repeated_cell, oneshot_cell,
    );
    let _ = writeln!(
        out,
        "{:<16} {:<34} {:<34}",
        "anonymous", anon_repeated_cell, anon_oneshot_cell,
    );
    for footnote in footnotes {
        let _ = writeln!(out, "{footnote}");
    }
    out
}

/// One row of the baseline comparison of Section 4: the paper's algorithm
/// against the `2(n−k)` prior work and the trivial `n`-register baseline.
#[derive(Debug, Clone)]
pub struct BaselineRow {
    /// The parameters of the comparison.
    pub params: Params,
    /// The algorithm measured.
    pub algorithm: Algorithm,
    /// The paper's register bound for this algorithm.
    pub registers: usize,
    /// Steps executed until every survivor decided.
    pub steps: u64,
    /// Whether the run satisfied both safety properties.
    pub safe: bool,
}

/// Compares the Figure 3 algorithm against both baselines for an `m = 1`
/// parameter triple (the regime of the comparison with \[4\]).
pub fn baseline_rows(params: Params, seed: u64) -> Vec<BaselineRow> {
    assert_eq!(params.m(), 1, "the [4] baseline is defined for m = 1");
    let mut algorithms = vec![Algorithm::OneShot, Algorithm::FullInformation];
    if 2 * (params.n() - params.k()) >= params.snapshot_components() {
        algorithms.insert(1, Algorithm::WideBaseline);
    }
    algorithms
        .into_iter()
        .map(|algorithm| {
            let report = run_measured(params, algorithm, seed);
            BaselineRow {
                params,
                algorithm,
                registers: algorithm.register_bound(params),
                steps: report.steps,
                safe: report.safety.is_safe(),
            }
        })
        .collect()
}

/// One point of the obstruction characterization: how long the survivors
/// needed to decide when `survivors` processes keep running.
#[derive(Debug, Clone)]
pub struct ObstructionPoint {
    /// How many processes keep running after the contention phase.
    pub survivors: usize,
    /// Steps executed when the run stopped.
    pub steps: u64,
    /// Whether every survivor decided within the step budget.
    pub decided: bool,
}

/// Measures, for each survivor-set size `1..=max_survivors`, whether the
/// survivors decide and how many steps the run took. The paper's progress
/// condition guarantees `decided == true` exactly when `survivors ≤ m`.
pub fn obstruction_series(
    params: Params,
    algorithm: Algorithm,
    max_survivors: usize,
    budget: u64,
    seed: u64,
) -> Vec<ObstructionPoint> {
    (1..=max_survivors)
        .map(|survivors| {
            let report = Scenario::new(params)
                .algorithm(algorithm)
                .adversary(Adversary::Obstruction {
                    contention_steps: 20 * params.n() as u64,
                    survivors,
                    seed,
                })
                .max_steps(budget)
                .run();
            ObstructionPoint {
                survivors,
                steps: report.steps,
                decided: report.survivors_decided,
            }
        })
        .collect()
}

/// The lower-bound witness report: covering-attack outcomes per width for the
/// non-anonymous one-shot algorithm, and cloning-attack outcomes per width
/// for the anonymous algorithm.
#[derive(Debug, Clone)]
pub struct LowerBoundReport {
    /// The parameters attacked.
    pub params: Params,
    /// Covering attack outcomes for widths `1..=n+2m−k`.
    pub covering: Vec<AttackOutcome>,
    /// Cloning attack outcomes for widths `1..=(m+1)(n−k)+m²`.
    pub cloning: Vec<AttackOutcome>,
}

impl LowerBoundReport {
    /// The smallest width at which the covering attack stops violating
    /// k-agreement.
    pub fn covering_resilient_width(&self) -> usize {
        self.covering
            .iter()
            .find(|o| !o.violates_agreement())
            .map(|o| o.width)
            .unwrap_or(self.params.snapshot_components())
    }

    /// The smallest width at which the cloning attack stops violating
    /// k-agreement.
    pub fn cloning_resilient_width(&self) -> usize {
        self.cloning
            .iter()
            .find(|o| !o.violates_agreement())
            .map(|o| o.width)
            .unwrap_or(self.params.anonymous_snapshot_components())
    }

    /// Renders the report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let p = self.params;
        let _ = writeln!(
            out,
            "Lower-bound witnesses for {} (n={}, m={}, k={})",
            p,
            p.n(),
            p.m(),
            p.k()
        );
        let _ = writeln!(
            out,
            "covering attack (Figure 3 widths; paper width {}, repeated lower bound {}):",
            p.snapshot_components(),
            p.repeated_lower_bound()
        );
        for outcome in &self.covering {
            let _ = writeln!(out, "  {outcome}");
        }
        let _ = writeln!(
            out,
            "cloning attack (Figure 5 widths; paper width {}, one-shot anon lower bound {}):",
            p.anonymous_snapshot_components(),
            p.anonymous_oneshot_lower_bound()
        );
        for outcome in &self.cloning {
            let _ = writeln!(out, "  {outcome}");
        }
        let _ = writeln!(
            out,
            "smallest resilient widths: covering {}, cloning {}",
            self.covering_resilient_width(),
            self.cloning_resilient_width()
        );
        out
    }
}

/// Runs both lower-bound attacks across all widths for one parameter triple.
pub fn lower_bound_report(params: Params, max_steps: u64) -> LowerBoundReport {
    LowerBoundReport {
        params,
        covering: width_sweep_one_shot(params, max_steps),
        cloning: clone_attack_sweep(params, params.anonymous_snapshot_components(), max_steps),
    }
}

/// The parameter triples used by the report binaries and EXPERIMENTS.md.
pub fn default_sweep() -> Vec<Params> {
    [
        (3, 1, 1),
        (4, 1, 2),
        (5, 2, 3),
        (6, 1, 3),
        (6, 2, 2),
        (8, 2, 3),
        (8, 1, 4),
        (10, 2, 4),
        (12, 3, 5),
        (16, 2, 6),
    ]
    .into_iter()
    .map(|(n, m, k)| Params::new(n, m, k).expect("sweep triples are valid"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_rows_stay_within_paper_bounds() {
        let params = Params::new(6, 2, 3).unwrap();
        for row in space_rows(params, 1) {
            assert!(row.safe, "{:?} violated safety", row.algorithm);
            assert!(row.survivors_decided, "{:?} starved", row.algorithm);
            assert!(
                row.measured <= row.component_bound,
                "{:?} wrote {} locations, component bound {}",
                row.algorithm,
                row.measured,
                row.component_bound
            );
            assert!(
                row.measured_registers <= row.bound,
                "{:?} charged {} registers, register bound {}",
                row.algorithm,
                row.measured_registers,
                row.bound
            );
        }
    }

    #[test]
    fn register_accounting_caps_snapshot_components_at_n() {
        // The boundary cell: n + 2m − k = 5 > n = 4, so the snapshot-backed
        // implementation may write up to 5 components while the register
        // bound is min(5, 4) = 4. The accounting must charge the components
        // as n single-writer registers, never more.
        let params = Params::new(4, 2, 3).unwrap();
        assert!(params.snapshot_components() > params.n());
        assert_eq!(Algorithm::OneShot.register_equivalent(params, 0, 5), 4);
        assert_eq!(Algorithm::OneShot.register_equivalent(params, 0, 3), 3);
        assert_eq!(Algorithm::Repeated(2).register_equivalent(params, 0, 5), 4);
        // Anonymous processes cannot own single-writer registers: no cap.
        assert_eq!(
            Algorithm::AnonymousOneShot.register_equivalent(params, 1, 5),
            6
        );

        let report = run_measured(params, Algorithm::OneShot, 7);
        assert!(report.safety.is_safe());
        assert!(report.locations_written <= params.snapshot_components());
        assert!(
            register_equivalent_of(&report) <= Algorithm::OneShot.register_bound(params),
            "measured {} locations but register accounting {} exceeds the bound {}",
            report.locations_written,
            register_equivalent_of(&report),
            Algorithm::OneShot.register_bound(params)
        );
    }

    #[test]
    fn boundary_cell_rows_never_read_above_the_register_bound() {
        // Regression for the ROADMAP item: at n + 2m − k > n the "measured"
        // column used to report raw components and could exceed the bound.
        let params = Params::new(4, 2, 3).unwrap();
        for seed in 0..8 {
            for row in space_rows(params, seed) {
                assert!(
                    row.measured_registers <= row.bound,
                    "{:?} seed {seed}: measured_registers {} > bound {}",
                    row.algorithm,
                    row.measured_registers,
                    row.bound
                );
            }
        }
    }

    #[test]
    fn figure1_report_mentions_all_bounds() {
        let params = Params::new(6, 2, 3).unwrap();
        let report = figure1_report(params, 1);
        assert!(report.contains("non-anonymous"));
        assert!(report.contains("anonymous"));
        assert!(report.contains("measured"));
    }

    #[test]
    fn baseline_rows_show_paper_using_fewer_registers() {
        let params = Params::new(10, 1, 3).unwrap();
        let rows = baseline_rows(params, 1);
        assert_eq!(rows.len(), 3);
        let ours = rows
            .iter()
            .find(|r| r.algorithm == Algorithm::OneShot)
            .unwrap();
        let wide = rows
            .iter()
            .find(|r| r.algorithm == Algorithm::WideBaseline)
            .unwrap();
        let trivial = rows
            .iter()
            .find(|r| r.algorithm == Algorithm::FullInformation)
            .unwrap();
        assert!(ours.registers < wide.registers);
        assert!(ours.registers < trivial.registers);
        assert!(rows.iter().all(|r| r.safe));
    }

    #[test]
    fn obstruction_series_decides_up_to_m() {
        let params = Params::new(5, 2, 3).unwrap();
        let series = obstruction_series(params, Algorithm::OneShot, params.m(), 2_000_000, 3);
        assert_eq!(series.len(), 2);
        for point in &series {
            assert!(
                point.decided,
                "survivors={} did not decide",
                point.survivors
            );
        }
    }

    #[test]
    fn lower_bound_report_is_consistent() {
        let params = Params::new(4, 1, 2).unwrap();
        let report = lower_bound_report(params, 200_000);
        assert_eq!(report.covering.len(), params.snapshot_components());
        assert_eq!(report.cloning.len(), params.anonymous_snapshot_components());
        assert!(report.covering_resilient_width() <= params.snapshot_components());
        assert!(report.cloning_resilient_width() <= params.anonymous_snapshot_components());
        assert!(report.render().contains("covering attack"));
    }

    #[test]
    fn default_sweep_is_valid_and_varied() {
        let sweep = default_sweep();
        assert!(sweep.len() >= 8);
        assert!(sweep.iter().any(|p| p.m() > 1));
        assert!(sweep.iter().any(|p| p.is_consensus()));
    }
}
