//! Regenerates **Figure 1** of the paper: the table of lower and upper
//! bounds on the number of registers for m-obstruction-free k-set agreement,
//! with an extra "measured" column showing the distinct locations the
//! implementations actually wrote in a run under the obstruction adversary.
//!
//! The per-algorithm space measurements run as an `sa-sweep` campaign over
//! the representative parameter list, all applicable algorithms and the
//! canonical obstruction adversary, executed in parallel by the engine.
//!
//! ```text
//! cargo run -p sa-bench --bin figure1 [max_n]
//! ```

use sa_bench::{default_sweep, figure1_report};
use sa_model::ParamSweep;
use sa_sweep::{
    run_campaign_collect, AdversarySpec, CampaignSpec, EngineConfig, ParamsSpec, Survivors,
    WorkloadSpec,
};
use set_agreement::Algorithm;

fn main() {
    let max_n: Option<usize> = std::env::args().nth(1).and_then(|s| s.parse().ok());

    println!("=== Figure 1 with measured space, representative parameters ===\n");
    for params in default_sweep() {
        println!("{}", figure1_report(params, 7));
    }

    println!("=== Per-algorithm space usage (sa-sweep campaign) ===\n");
    let spec = CampaignSpec {
        name: "figure1-space".into(),
        params: ParamsSpec::Explicit(default_sweep()),
        algorithms: Algorithm::catalog(2),
        adversaries: vec![AdversarySpec::Obstruction {
            contention_factor: 50,
            survivors: Survivors::M,
        }],
        seeds: vec![7],
        workload: WorkloadSpec::Distinct,
        max_steps: 5_000_000,
        campaign_seed: 7,
        ..CampaignSpec::default()
    };
    let (records, outcome) = run_campaign_collect(&spec, EngineConfig::default());
    println!(
        "{:<24} {:>3} {:>3} {:>3} {:>8} {:>9} {:>9} {:>9} {:>8} {:>6}",
        "algorithm", "n", "m", "k", "bound", "declared", "measured", "reg-used", "steps", "safe"
    );
    for record in &records {
        // The register-accounted footprint: snapshot components beyond n are
        // charged n single-writer registers, so "reg-used" is the column
        // comparable against "bound" even when n + 2m − k > n.
        let params = sa_model::Params::new(record.n, record.m, record.k)
            .expect("records carry valid parameter triples");
        let register_equivalent = Algorithm::from_label(&record.algorithm, record.instances)
            .expect("records carry catalog algorithm labels")
            .register_equivalent(params, record.registers_written, record.components_written);
        assert!(
            register_equivalent <= record.register_bound,
            "register accounting exceeds the Figure 1 bound: {record:?}"
        );
        println!(
            "{:<24} {:>3} {:>3} {:>3} {:>8} {:>9} {:>9} {:>9} {:>8} {:>6}",
            record.algorithm,
            record.n,
            record.m,
            record.k,
            record.register_bound,
            record.component_bound,
            record.locations_written,
            register_equivalent,
            record.steps,
            record.safe(),
        );
    }
    eprintln!(
        "figure1: {} scenarios ({} inapplicable skipped), {} safety violations, \
         {} bound violations",
        outcome.records,
        outcome.expansion.skipped_inapplicable,
        outcome.safety_violations,
        outcome.bound_violations
    );
    assert!(outcome.clean(), "safety or bound violation: {outcome:?}");

    if let Some(max_n) = max_n {
        println!("\n=== Bound formulas for every valid (n, m, k) with n <= {max_n} ===\n");
        println!(
            "{:>3} {:>3} {:>3} | {:>10} {:>10} | {:>10} {:>10} | {:>12} {:>12}",
            "n",
            "m",
            "k",
            "rep lower",
            "rep upper",
            "1shot low",
            "1shot up",
            "anon 1s low",
            "anon rep up"
        );
        for params in ParamSweep::up_to(max_n) {
            let fig = sa_lowerbound::bounds::Figure1::for_params(params);
            use sa_lowerbound::bounds::{Naming, Setting};
            println!(
                "{:>3} {:>3} {:>3} | {:>10} {:>10} | {:>10} {:>10} | {:>12} {:>12}",
                params.n(),
                params.m(),
                params.k(),
                fig.cell(Setting::Repeated, Naming::NonAnonymous)
                    .lower
                    .registers,
                fig.cell(Setting::Repeated, Naming::NonAnonymous)
                    .upper
                    .registers,
                fig.cell(Setting::OneShot, Naming::NonAnonymous)
                    .lower
                    .registers,
                fig.cell(Setting::OneShot, Naming::NonAnonymous)
                    .upper
                    .registers,
                fig.cell(Setting::OneShot, Naming::Anonymous)
                    .lower
                    .registers,
                fig.cell(Setting::Repeated, Naming::Anonymous)
                    .upper
                    .registers,
            );
        }
    }
}
