//! Regenerates **Figure 1** of the paper: the table of lower and upper
//! bounds on the number of registers for m-obstruction-free k-set agreement,
//! with an extra "measured" column showing the distinct locations the
//! implementations actually wrote in a run under the obstruction adversary.
//!
//! ```text
//! cargo run -p sa-bench --bin figure1 [max_n]
//! ```

use sa_bench::{default_sweep, figure1_report, space_rows};
use sa_model::ParamSweep;

fn main() {
    let max_n: Option<usize> = std::env::args().nth(1).and_then(|s| s.parse().ok());

    println!("=== Figure 1 with measured space, representative parameters ===\n");
    for params in default_sweep() {
        println!("{}", figure1_report(params, 7));
    }

    println!("=== Per-algorithm space usage ===\n");
    println!(
        "{:<24} {:>3} {:>3} {:>3} {:>8} {:>9} {:>6} {:>6}",
        "algorithm", "n", "m", "k", "bound", "measured", "steps", "safe"
    );
    for params in default_sweep() {
        for row in space_rows(params, 7) {
            println!(
                "{:<24} {:>3} {:>3} {:>3} {:>8} {:>9} {:>6} {:>6}",
                row.algorithm.label(),
                row.params.n(),
                row.params.m(),
                row.params.k(),
                row.bound,
                row.measured,
                row.steps,
                row.safe
            );
        }
    }

    if let Some(max_n) = max_n {
        println!("\n=== Bound formulas for every valid (n, m, k) with n <= {max_n} ===\n");
        println!(
            "{:>3} {:>3} {:>3} | {:>10} {:>10} | {:>10} {:>10} | {:>12} {:>12}",
            "n",
            "m",
            "k",
            "rep lower",
            "rep upper",
            "1shot low",
            "1shot up",
            "anon 1s low",
            "anon rep up"
        );
        for params in ParamSweep::up_to(max_n) {
            let fig = sa_lowerbound::bounds::Figure1::for_params(params);
            use sa_lowerbound::bounds::{Naming, Setting};
            println!(
                "{:>3} {:>3} {:>3} | {:>10} {:>10} | {:>10} {:>10} | {:>12} {:>12}",
                params.n(),
                params.m(),
                params.k(),
                fig.cell(Setting::Repeated, Naming::NonAnonymous).lower.registers,
                fig.cell(Setting::Repeated, Naming::NonAnonymous).upper.registers,
                fig.cell(Setting::OneShot, Naming::NonAnonymous).lower.registers,
                fig.cell(Setting::OneShot, Naming::NonAnonymous).upper.registers,
                fig.cell(Setting::OneShot, Naming::Anonymous).lower.registers,
                fig.cell(Setting::Repeated, Naming::Anonymous).upper.registers,
            );
        }
    }
}
