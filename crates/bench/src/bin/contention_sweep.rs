//! Characterizes the `m`-obstruction-freedom progress condition: for each
//! algorithm, how long the surviving processes need to decide as a function
//! of how many of them keep running. The paper guarantees termination
//! exactly when the survivor count is at most `m`; above `m` the run may
//! exhaust its step budget without every survivor deciding.
//!
//! The survivor sweep is expressed as an `sa-sweep` campaign — one
//! obstruction adversary per survivor count, crossed over the cells and
//! algorithms — and executed in parallel by the engine.
//!
//! ```text
//! cargo run -p sa-bench --bin contention_sweep
//! ```

use sa_model::Params;
use sa_sweep::{
    run_campaign_collect, AdversarySpec, CampaignSpec, EngineConfig, ParamsSpec, Survivors,
    WorkloadSpec,
};
use set_agreement::Algorithm;

fn main() {
    let cells = vec![
        Params::new(6, 1, 3).unwrap(),
        Params::new(6, 2, 3).unwrap(),
        Params::new(6, 3, 3).unwrap(),
    ];
    let max_survivors = cells.iter().map(|p| p.k() + 1).max().unwrap();
    let spec = CampaignSpec {
        name: "contention-sweep".into(),
        params: ParamsSpec::Explicit(cells),
        algorithms: vec![
            Algorithm::OneShot,
            Algorithm::Repeated(2),
            Algorithm::AnonymousOneShot,
        ],
        // Sweep survivor counts past every m to show where the guarantee
        // stops holding.
        adversaries: (1..=max_survivors)
            .map(|survivors| AdversarySpec::Obstruction {
                contention_factor: 20,
                survivors: Survivors::Count(survivors),
            })
            .collect(),
        seeds: vec![13],
        workload: WorkloadSpec::Distinct,
        max_steps: 400_000,
        campaign_seed: 13,
        ..CampaignSpec::default()
    };

    let (records, outcome) = run_campaign_collect(&spec, EngineConfig::default());
    println!(
        "{:<24} {:>3} {:>3} {:>3} {:>10} {:>10} {:>8} {:>11}",
        "algorithm", "n", "m", "k", "survivors", "steps", "decided", "guaranteed"
    );
    for record in &records {
        println!(
            "{:<24} {:>3} {:>3} {:>3} {:>10} {:>10} {:>8} {:>11}",
            record.algorithm,
            record.n,
            record.m,
            record.k,
            record.survivors,
            record.steps,
            record.survivors_decided,
            record.progress_required,
        );
    }
    eprintln!(
        "contention_sweep: {} scenarios, {} safety violations, {} guaranteed runs starved",
        outcome.records, outcome.safety_violations, outcome.progress_failures
    );
    assert!(outcome.clean(), "safety or bound violation: {outcome:?}");
    assert_eq!(
        outcome.progress_failures, 0,
        "a survivor set within m starved"
    );
}
