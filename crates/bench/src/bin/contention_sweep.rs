//! Characterizes the `m`-obstruction-freedom progress condition: for each
//! algorithm, how long the surviving processes need to decide as a function
//! of how many of them keep running. The paper guarantees termination
//! exactly when the survivor count is at most `m`; above `m` the run may
//! exhaust its step budget without every survivor deciding.
//!
//! ```text
//! cargo run -p sa-bench --bin contention_sweep
//! ```

use sa_bench::obstruction_series;
use sa_model::Params;
use set_agreement::Algorithm;

fn main() {
    let cases = [
        (Params::new(6, 1, 3).unwrap(), Algorithm::OneShot),
        (Params::new(6, 2, 3).unwrap(), Algorithm::OneShot),
        (Params::new(6, 3, 3).unwrap(), Algorithm::OneShot),
        (Params::new(6, 2, 3).unwrap(), Algorithm::Repeated(2)),
        (Params::new(6, 2, 3).unwrap(), Algorithm::AnonymousOneShot),
    ];
    println!(
        "{:<24} {:>3} {:>3} {:>3} {:>10} {:>10} {:>8}",
        "algorithm", "n", "m", "k", "survivors", "steps", "decided"
    );
    for (params, algorithm) in cases {
        // Sweep survivor counts past m to show where the guarantee stops.
        let series = obstruction_series(params, algorithm, params.k() + 1, 400_000, 13);
        for point in series {
            println!(
                "{:<24} {:>3} {:>3} {:>3} {:>10} {:>10} {:>8}",
                algorithm.label(),
                params.n(),
                params.m(),
                params.k(),
                point.survivors,
                point.steps,
                point.decided
            );
        }
    }
}
