//! Regenerates the lower-bound evidence of the paper (Theorems 2 and 10) in
//! executable form: the covering attack against under-provisioned instances
//! of the Figure 3 algorithm and the cloning attack against
//! under-provisioned instances of the Figure 5 algorithm, swept over every
//! width up to the paper's.
//!
//! ```text
//! cargo run -p sa-bench --bin lower_bound_witness
//! ```

use sa_bench::lower_bound_report;
use sa_model::Params;

fn main() {
    let triples = [
        (3, 1, 1),
        (4, 1, 2),
        (5, 2, 3),
        (6, 1, 3),
        (6, 2, 4),
        (8, 2, 3),
    ];
    for (n, m, k) in triples {
        let params = Params::new(n, m, k).expect("triples are valid");
        let report = lower_bound_report(params, 2_000_000);
        println!("{}", report.render());
    }
}
