//! The two strongest evidence modes of the sweep engine, in-process:
//!
//! 1. a **crash campaign** — every scheduler template wrapped in
//!    seed-derived crash failures (`crash:<inner>:<f>` in spec syntax),
//!    checking that validity, k-agreement and the space bounds survive
//!    arbitrary crash patterns, and
//! 2. an **exhaustive campaign** (`mode = explore`) — tiny cells
//!    model-checked across *every* interleaving, upgrading "sampled, 0
//!    violations" to "exhaustively verified".
//!
//! Run with: `cargo run --release --example crash_and_verify`

use sa_sweep::prelude::*;
use set_agreement::model::Params;
use set_agreement::Algorithm;

fn main() {
    // --- 1. Crash adversaries over a small grid ------------------------
    let crash = CampaignSpec {
        name: "crash-demo".into(),
        params: ParamsSpec::Grid {
            n: vec![4, 5, 6],
            m: vec![1, 2],
            k: vec![2, 3],
        },
        algorithms: Algorithm::catalog(2),
        adversaries: vec![
            // Obstruction contention, then up to 2 crash failures: if a
            // survivor crashes, the remaining ones must still decide.
            AdversarySpec::Crash {
                inner: Box::new(AdversarySpec::Obstruction {
                    contention_factor: 30,
                    survivors: Survivors::M,
                }),
                crashes: 2,
            },
            // Fair scheduling with one crash: safety must be unaffected.
            AdversarySpec::Crash {
                inner: Box::new(AdversarySpec::RoundRobin),
                crashes: 1,
            },
        ],
        seeds: (0..3).collect(),
        workload: WorkloadSpec::Distinct,
        max_steps: 1_000_000,
        campaign_seed: 7,
        ..CampaignSpec::default()
    };
    let (records, outcome) = run_campaign_collect(&crash, EngineConfig::default());
    let crashes: u64 = records.iter().map(|r| r.crashes as u64).sum();
    println!(
        "crash campaign: {} scenarios, {} crashes injected, {} safety violations\n",
        outcome.records, crashes, outcome.safety_violations
    );
    assert!(outcome.clean(), "violations under crashes: {outcome:?}");

    // --- 2. Exhaustive verification of tiny cells ----------------------
    let exhaustive = CampaignSpec {
        name: "verify-demo".into(),
        params: ParamsSpec::Explicit(vec![
            Params::new(2, 1, 1).expect("valid cell"),
            Params::new(3, 1, 2).expect("valid cell"),
        ]),
        algorithms: vec![Algorithm::OneShot, Algorithm::AnonymousOneShot],
        mode: CampaignMode::Explore,
        max_steps: 100_000,    // path depth bound
        max_states: 1_000_000, // state budget
        ..CampaignSpec::default()
    };
    let (records, outcome) = run_campaign_collect(&exhaustive, EngineConfig::default());
    for record in &records {
        println!(
            "exhaustive: n={} m={} k={} {:<22} {:>7} states -> {}",
            record.n,
            record.m,
            record.k,
            record.algorithm,
            record.explored_states,
            if record.verified {
                "VERIFIED (every interleaving safe)"
            } else {
                "truncated"
            }
        );
    }
    assert_eq!(
        outcome.unverified_explorations, 0,
        "a cell could not be exhausted: {outcome:?}"
    );

    println!("\n{}", Summary::of(&records).render());
}
