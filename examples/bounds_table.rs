//! Print Figure 1 of the paper for chosen parameters, together with the
//! space the implementations actually use and the widths at which the
//! lower-bound attacks stop finding violations.
//!
//! ```text
//! cargo run --example bounds_table -- [n] [m] [k]
//! ```

use set_agreement::lowerbound::bounds::Figure1;
use set_agreement::lowerbound::covering::minimal_resilient_width;
use set_agreement::model::Params;
use set_agreement::{Adversary, Algorithm, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let m: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let params = Params::new(n, m, k)?;

    // The bounds table of Figure 1.
    let table = Figure1::for_params(params);
    println!("{}", table.render());
    assert_eq!(table.consistency_violation(), None);

    // Measured space of the two headline algorithms.
    for (label, algorithm) in [
        ("Figure 3 (one-shot)", Algorithm::OneShot),
        ("Figure 4 (repeated, 2 instances)", Algorithm::Repeated(2)),
        ("Figure 5 (anonymous one-shot)", Algorithm::AnonymousOneShot),
    ] {
        let report = Scenario::new(params)
            .algorithm(algorithm)
            .adversary(Adversary::Obstruction {
                contention_steps: 50 * n as u64,
                survivors: m,
                seed: 1,
            })
            .max_steps(5_000_000)
            .run();
        println!(
            "{label:<34} wrote {:>3} locations (declares {:>3})",
            report.locations_written,
            algorithm.component_bound(params)
        );
    }

    // An executable glimpse of the lower bound: the smallest width at which
    // the covering attack stops producing k-agreement violations.
    let resilient = minimal_resilient_width(params, 1_000_000);
    println!(
        "\ncovering attack stops violating k-agreement at width {resilient} \
         (paper: {} needed, {} sufficient)",
        params.repeated_lower_bound(),
        params.snapshot_components()
    );
    Ok(())
}
