//! One plan, three execution backends.
//!
//! The unified API separates **what** runs (an [`ExecutionPlan`]: cell,
//! algorithm, adversary, workload, budget) from **how** it runs (a
//! [`Backend`] behind an [`Executor`]): the deterministic simulator, one OS
//! thread per process on real shared memory, or the bounded exhaustive
//! explorer. This example executes the same Figure 3 one-shot plan on all
//! three and prints what kind of evidence each produces.
//!
//! ```text
//! cargo run --release --example execution_backends
//! ```

use set_agreement::model::Params;
use set_agreement::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny cell so the explorer can exhaust the state space.
    let params = Params::new(3, 1, 2)?;
    let plan = ExecutionPlan::new(params)
        .algorithm(Algorithm::OneShot)
        .adversary(Adversary::Obstruction {
            contention_steps: 60,
            survivors: 1,
            seed: 11,
        });

    // 1. The deterministic simulator: one sampled schedule, reproducible
    //    bit for bit. The adversary is the schedule.
    let scheduled = Executor::scheduled().execute(&plan).expect_scheduled();
    println!(
        "scheduled: {:>6} steps, safe = {}, survivor decided = {}",
        scheduled.steps,
        scheduled.safety.is_safe(),
        scheduled.survivors_decided
    );

    // 2. Real OS threads: the hardware linearizes, so we measure actual
    //    contention and assert safety counters, never step traces.
    let threaded = Executor::threaded(ThreadedConfig::with_step_budget(100_000).seeded(7))
        .execute(&plan)
        .expect_threaded();
    println!(
        "threaded:  {:>6} steps, safe = {}, {:.0} steps/s over {:?} wall",
        threaded.steps,
        threaded.safety.is_safe(),
        threaded.steps_per_sec(),
        threaded.wall
    );

    // 3. The exhaustive explorer: EVERY interleaving of the cell, which
    //    subsumes any single adversary. "verified" is strictly stronger
    //    than any number of clean sampled runs.
    let explored = Executor::exploring(ExploreConfig {
        max_depth: 100_000,
        max_states: 2_000_000,
        dedup: true,
        ..ExploreConfig::default()
    })
    .execute(&plan)
    .expect_explored();
    println!(
        "explore:   {:>6} states (max depth {}), verified = {}",
        explored.states_visited,
        explored.max_depth_reached,
        explored.verified()
    );

    assert!(scheduled.safety.is_safe());
    assert!(threaded.safety.is_safe());
    assert!(explored.verified());

    // The same dispatch is open to custom backends: anything implementing
    // ExecutionBackend slots behind the same Executor surface.
    #[derive(Debug)]
    struct Twice;
    impl ExecutionBackend for Twice {
        fn label(&self) -> &'static str {
            "twice"
        }
        fn execute(&self, plan: &ExecutionPlan) -> ExecutionReport {
            // Run the simulator twice and keep the second report — a stand-in
            // for retry/ensemble backends.
            let _ = Backend::Scheduled.execute(plan);
            Backend::Scheduled.execute(plan)
        }
    }
    let twice = Executor::with_backend(Box::new(Twice));
    println!(
        "custom backend {:?} is safe: {}",
        twice.label(),
        twice.execute(&plan).safe()
    );
    Ok(())
}
