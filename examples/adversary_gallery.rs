//! A gallery of adversarial schedules.
//!
//! The correctness statement of the paper has two halves: safety (validity
//! and k-agreement) must hold under *every* schedule, while termination is
//! only required when at most `m` processes keep taking steps. This example
//! runs the same algorithm and workload under five different adversaries and
//! prints what each one obtains, illustrating the asymmetry.
//!
//! ```text
//! cargo run --example adversary_gallery
//! ```

use set_agreement::model::Params;
use set_agreement::{Adversary, Algorithm, ExecutionPlan, Executor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::new(6, 2, 3)?;
    let adversaries = [
        (
            "solo run (one process, must decide)",
            Adversary::Solo { process: 4 },
        ),
        (
            "m survivors after contention (must decide)",
            Adversary::Obstruction {
                contention_steps: 300,
                survivors: 2,
                seed: 5,
            },
        ),
        (
            "round-robin contention (safety only)",
            Adversary::RoundRobin,
        ),
        (
            "random contention (safety only)",
            Adversary::Random { seed: 5 },
        ),
        (
            "bursty schedule (safety only)",
            Adversary::Bursts {
                burst_len: 12,
                seed: 5,
            },
        ),
    ];

    println!("algorithm: Figure 3 one-shot, {params}\n");
    println!(
        "{:<44} {:>8} {:>9} {:>9} {:>6}",
        "adversary", "steps", "deciders", "distinct", "safe"
    );
    // One executor, many plans: the adversary is the only thing that varies.
    let executor = Executor::scheduled();
    for (label, adversary) in adversaries {
        let plan = ExecutionPlan::new(params)
            .algorithm(Algorithm::OneShot)
            .adversary(adversary)
            .max_steps(60_000);
        let report = executor.execute(&plan).expect_scheduled();
        println!(
            "{:<44} {:>8} {:>9} {:>9} {:>6}",
            label,
            report.steps,
            report.decisions.deciders(1),
            report.distinct_outputs(1),
            report.safety.is_safe()
        );
        assert!(
            report.safety.is_safe(),
            "safety must hold under every adversary"
        );
    }

    println!(
        "\nNote: under full contention the step budget may run out before anyone\n\
         decides — that is allowed. What is never allowed is more than k = {}\n\
         distinct outputs or a decision on a non-proposed value.",
        params.k()
    );
    Ok(())
}
