//! Drive the `sa-sweep` engine in-process: declare a campaign over a
//! parameter grid, run it across all CPUs, and aggregate the results —
//! the programmatic counterpart of
//!
//! ```text
//! sweep run --n 4..8 --m 1,2 --k 2,3 --algorithms all \
//!           --adversaries obstruction:50 --seeds 4 --out results.jsonl
//! sweep summarize results.jsonl
//! ```
//!
//! Run with: `cargo run --release --example sweep_campaign`

use sa_sweep::prelude::*;
use set_agreement::Algorithm;

fn main() {
    let spec = CampaignSpec {
        name: "example".into(),
        params: ParamsSpec::Grid {
            n: (4..=8).collect(),
            m: vec![1, 2],
            k: vec![2, 3],
        },
        algorithms: Algorithm::catalog(2),
        adversaries: vec![
            AdversarySpec::Obstruction {
                contention_factor: 50,
                survivors: Survivors::M,
            },
            AdversarySpec::RoundRobin,
        ],
        seeds: (0..4).collect(),
        workload: WorkloadSpec::Distinct,
        max_steps: 2_000_000,
        campaign_seed: 1,
        ..CampaignSpec::default()
    };

    let (records, outcome) = run_campaign_collect(&spec, EngineConfig::default());
    println!(
        "campaign {:?}: {} scenarios, {} skipped as inapplicable\n",
        spec.name, outcome.records, outcome.expansion.skipped_inapplicable
    );

    let summary = Summary::of(&records);
    print!("{}", summary.render());

    // Every record carries the paper's accounting next to the measurement,
    // so claims like "Figure 3 never writes more than n + 2m - k base
    // objects" are one filter away.
    let worst = records
        .iter()
        .max_by_key(|r| r.locations_written)
        .expect("campaign is non-empty");
    println!(
        "\nwidest footprint: {} on (n={}, m={}, k={}) — {} of {} declared objects",
        worst.algorithm, worst.n, worst.m, worst.k, worst.locations_written, worst.component_bound
    );
    assert!(outcome.clean(), "violations found: {outcome:?}");
}
