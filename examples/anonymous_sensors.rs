//! Anonymous set agreement for an identical fleet of sensors.
//!
//! Section 6 of the paper gives an algorithm that works when processes have
//! no identifiers and run identical code — exactly the situation of a swarm
//! of mass-produced sensors that must converge on a small set of reference
//! readings without any naming infrastructure. The price of anonymity is
//! space: `(m+1)(n−k) + m² + 1` registers instead of `min(n+2m−k, n)`.
//!
//! ```text
//! cargo run --example anonymous_sensors
//! ```

use set_agreement::model::Params;
use set_agreement::runtime::Workload;
use set_agreement::{Adversary, Algorithm, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 9 sensors, at most 3 reference readings, progress whenever at most 2
    // sensors keep transmitting.
    let params = Params::new(9, 2, 3)?;

    // Raw readings in tenths of a degree; clustered around 21.4 °C with a few
    // outliers, so the agreed set shows which readings survived.
    let readings: Vec<u64> = vec![214, 213, 215, 214, 198, 214, 213, 240, 215];
    let workload = Workload::from_matrix(readings.iter().map(|&r| vec![r]).collect());

    let report = Scenario::new(params)
        .algorithm(Algorithm::AnonymousOneShot)
        .workload(workload.clone())
        .adversary(Adversary::Obstruction {
            contention_steps: 500,
            survivors: 2,
            seed: 99,
        })
        .max_steps(5_000_000)
        .run();

    println!("anonymous sensor agreement over {params}");
    println!("raw readings:   {readings:?}");
    println!(
        "agreed readings: {:?} (at most k = {})",
        report.decisions.outputs(1),
        params.k()
    );
    println!(
        "registers: anonymous algorithm uses up to {} components, the named one only {}",
        params.anonymous_snapshot_components(),
        params.register_upper_bound()
    );
    println!(
        "the anonymous lower bound (Theorem 10) says more than {:.2} registers are unavoidable",
        params.anonymous_oneshot_lower_bound_raw()
    );
    println!("safety: {}", report.safety);
    assert!(report.safety.is_safe());

    // Every agreed value is one of the raw readings (validity).
    for value in report.decisions.outputs(1) {
        assert!(readings.contains(&value), "non-input value decided");
    }
    Ok(())
}
