//! Exhaustively model-check a tiny configuration and demonstrate the
//! covering mechanism of the lower bound.
//!
//! Four things happen here:
//!
//! 1. every interleaving (up to a depth bound) of two processes running the
//!    Figure 3 algorithm is checked for k-agreement — first at the paper's
//!    width, where no violation exists, then at a deliberately reduced width,
//!    where the explorer produces a concrete violating schedule;
//! 2. the same exhaustive check runs on the work-stealing parallel explorer,
//!    whose report (state count, verification verdict, memory statistics) is
//!    byte-identical at any worker count;
//! 3. the anonymous algorithm is explored up to process-id orbits
//!    (`SymmetryMode::ProcessIds`): one representative per orbit, identical
//!    verdicts, a fraction of the states;
//! 4. the block-write/obliteration mechanics of Theorem 2 are shown on a real
//!    executor: a covered fragment is erased, an uncovered one is not.
//!
//! ```text
//! cargo run --example model_checking
//! ```

use set_agreement::algorithms::OneShotSetAgreement;
use set_agreement::lowerbound::blockwrite::{covered_locations, obliterates};
use set_agreement::model::{Params, ProcessId};
use set_agreement::runtime::{
    agreement_predicate, explore, parallel_explore, Executor, ExploreConfig, ParallelExploreConfig,
};

fn executor(params: Params, width: usize) -> Executor<OneShotSetAgreement> {
    let automata: Vec<_> = (0..params.n())
        .map(|p| {
            OneShotSetAgreement::deficient(params, ProcessId(p), 10 + p as u64, width).unwrap()
        })
        .collect();
    Executor::new(automata)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::new(2, 1, 1)?;

    // 1a. The paper's width: every interleaving keeps agreement.
    let exec = executor(params, params.snapshot_components());
    let result = explore(&exec, ExploreConfig::with_depth(28), agreement_predicate(1));
    println!(
        "paper width {}: explored {} states over {} schedules — violation: {}",
        params.snapshot_components(),
        result.states_visited,
        result.paths,
        result.violation.is_some()
    );
    assert!(result.violation.is_none());

    // 1b. One register: the explorer finds a schedule with two outputs.
    let exec = executor(params, 1);
    let result = explore(&exec, ExploreConfig::with_depth(40), agreement_predicate(1));
    let violation = result.violation.expect("a violation must exist at width 1");
    println!(
        "width 1: violation after {} steps — {}",
        violation.schedule.len(),
        violation.description
    );
    println!(
        "violating schedule: {:?}",
        violation
            .schedule
            .iter()
            .map(|p| p.index())
            .collect::<Vec<_>>()
    );

    // 2. The work-stealing explorer checks the same property level by level
    //    and agrees with the serial search state for state; its memory
    //    statistics show what a bigger cell would cost before you run it.
    let exec = executor(params, params.snapshot_components());
    for threads in [1, 4] {
        let result = parallel_explore(
            &exec,
            ParallelExploreConfig {
                threads,
                max_depth: 100_000,
                max_states: 1_000_000,
                ..ParallelExploreConfig::default()
            },
            agreement_predicate(1),
        );
        println!(
            "\nparallel explore ({threads} workers): {} states, verified: {}, \
             peak frontier {} states, seen-set {} keys, ~{} KB estimated",
            result.states_visited,
            result.verified(),
            result.frontier_peak,
            result.seen_entries,
            result.approx_bytes / 1024
        );
        assert!(result.verified());
    }

    // 3. Symmetry reduction: the anonymous algorithm cannot tell its
    //    processes apart, so the explorer can deduplicate configurations up
    //    to process-id orbits — one representative per orbit, identical
    //    verdicts, far fewer states.
    {
        use set_agreement::algorithms::AnonymousSetAgreement;
        use set_agreement::runtime::SymmetryMode;
        let cell = Params::new(3, 1, 2)?;
        let anonymous = Executor::new(
            (0..cell.n())
                .map(|p| AnonymousSetAgreement::one_shot(cell, 10 + p as u64))
                .collect::<Vec<_>>(),
        );
        let config = |symmetry| ExploreConfig {
            max_depth: 100_000,
            max_states: 1_000_000,
            dedup: true,
            symmetry,
            ..ExploreConfig::default()
        };
        let full = explore(
            &anonymous,
            config(SymmetryMode::Off),
            agreement_predicate(2),
        );
        let reduced = explore(
            &anonymous,
            config(SymmetryMode::ProcessIds),
            agreement_predicate(2),
        );
        println!(
            "\nsymmetry reduction (anonymous 3/1/2, distinct inputs): \
             {} full states vs {} orbit states ({:.1}x), both verified: {}",
            full.states_visited,
            reduced.states_visited,
            full.states_visited as f64 / reduced.states_visited as f64,
            full.verified() && reduced.verified()
        );
        assert!(reduced.symmetry_applied);
        assert_eq!(full.verified(), reduced.verified());
    }

    // 4. Obliteration: with a width-1 object, p0 covers the only location, so
    //    a block write erases anything p1 did; at full width it does not.
    let params3 = Params::new(3, 1, 1)?;
    let covered = executor(params3, 1);
    println!(
        "\ncovered locations by p0 (width 1): {:?}",
        covered_locations(&covered, &[ProcessId(0)])
    );
    let fragment: Vec<ProcessId> = std::iter::repeat_n(ProcessId(1), 12).collect();
    println!(
        "block write obliterates p1's fragment at width 1:   {}",
        obliterates(&covered, &[ProcessId(0)], &fragment)
    );
    let full = executor(params3, params3.snapshot_components());
    println!(
        "block write obliterates p1's fragment at full width: {}",
        obliterates(&full, &[ProcessId(0)], &fragment)
    );
    Ok(())
}
