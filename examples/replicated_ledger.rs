//! Repeated set agreement as the backbone of a replicated ledger — served.
//!
//! The paper motivates the *repeated* problem with Herlihy's universal
//! construction: a service is replicated by agreeing, round after round, on
//! which commands to apply next. With k-set agreement up to `k` branches may
//! survive each round (a k-branch "blocklace" rather than a chain).
//!
//! This example runs the ledger the way a deployment would: transactions are
//! submitted to the `sa-serve` service by a pool of clients, the service
//! batches concurrent submissions into agreement rounds — one batch is one
//! Figure 4 repeated-agreement instance — and every client gets back the
//! round id and the value its round committed for it. The virtual clock
//! makes the whole run (ledger contents, latency percentiles, throughput)
//! deterministic.
//!
//! ```text
//! cargo run --example replicated_ledger
//! ```

use set_agreement::serve::{serve, ServeConfig};
use set_agreement::{ServeClock, ServeLoad, ServeOptions};
use std::collections::{BTreeMap, BTreeSet};

fn main() {
    // 16 clients submit payments at 8 per tick for 125 ticks — 1000
    // transactions in all. The service cuts a round after at most 6
    // concurrent submissions; each round solves 2-obstruction-free 2-set
    // agreement among its submitters, so at most 2 transaction branches
    // survive any round.
    let (m, k) = (2, 2);
    let mut config = ServeConfig::new(m, k);
    config.options = ServeOptions {
        shards: 2,
        batch_max: 6,
        clients: 16,
        rate: 8,
        duration_ticks: 125,
        clock: ServeClock::Virtual,
        load: ServeLoad::Distinct,
        seed: 7,
    };
    let report = serve(&config);

    // Rebuild the ledger from the decided-value log: one entry per round,
    // holding the branch values that round committed.
    let mut ledger: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for entry in &report.decided {
        ledger
            .entry(entry.instance)
            .or_default()
            .insert(entry.value);
    }
    for (round, branches) in ledger.iter().take(5) {
        println!(
            "round {round}: committed {branches:?} ({} branch{})",
            branches.len(),
            if branches.len() == 1 { "" } else { "es" }
        );
    }
    if ledger.len() > 5 {
        println!("... {} more rounds", ledger.len() - 5);
    }
    assert!(
        ledger.values().all(|branches| branches.len() <= k),
        "a round exceeded k branches"
    );

    println!(
        "ledger: {} transactions committed across {} rounds ({} shards, batch-max {})",
        report.proposals, report.batches, report.shards, config.options.batch_max
    );
    let (p50, p90, p99, p999) = report.histogram.summary();
    println!(
        "latency: p50 {p50} us, p90 {p90} us, p99 {p99} us, p999 {p999} us (mean {:.1} us)",
        report.histogram.mean()
    );
    println!(
        "throughput: {} transactions/s, {} agreement steps/s",
        report.ops_per_sec(),
        report.steps_per_sec()
    );

    assert_eq!(report.safety_violations(), 0, "safety violated");
    assert!(report.drained && report.unfinished == 0, "proposals lost");
    println!("safety: every round valid, no round over {k} branches, all clients answered");
}
