//! Repeated set agreement as the backbone of a replicated ledger.
//!
//! The paper motivates the *repeated* problem with Herlihy's universal
//! construction: a service is replicated by agreeing, round after round, on
//! which commands to apply next. With k-set agreement up to `k` branches may
//! survive each round — here we model a payment ledger where every replica
//! proposes the transaction it received, and the round's agreed values are
//! appended to the ledger (a k-branch "blocklace" rather than a chain).
//!
//! ```text
//! cargo run --example replicated_ledger
//! ```

use set_agreement::model::Params;
use set_agreement::runtime::Workload;
use set_agreement::{Adversary, Algorithm, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 6 replicas, 2-obstruction-free 2-set agreement: each round commits at
    // most 2 transactions, and the system keeps making progress as long as at
    // most 2 replicas stay active (e.g. after a network partition isolates
    // the rest).
    let params = Params::new(6, 2, 2)?;
    let rounds = 5usize;

    // Transactions are encoded as (replica, round) amounts; replica p proposes
    // transaction 1000·round + p in each round.
    let workload = Workload::from_matrix(
        (0..params.n())
            .map(|p| (1..=rounds as u64).map(|t| 1000 * t + p as u64).collect())
            .collect(),
    );

    let report = Scenario::new(params)
        .algorithm(Algorithm::Repeated(rounds))
        .workload(workload)
        .adversary(Adversary::Obstruction {
            contention_steps: 600,
            survivors: 2,
            seed: 7,
        })
        .max_steps(5_000_000)
        .run();

    println!("replicated ledger over {params}");
    println!(
        "rounds requested: {rounds}, steps executed: {}",
        report.steps
    );
    let mut committed = 0;
    for round in report.decisions.instances() {
        let outputs = report.decisions.outputs(round);
        committed += outputs.len();
        println!(
            "round {round}: committed {:?} ({} branch{})",
            outputs,
            outputs.len(),
            if outputs.len() == 1 { "" } else { "es" }
        );
        assert!(outputs.len() <= params.k(), "round exceeded k branches");
    }
    println!("total transactions committed: {committed}");
    println!("safety: {}", report.safety);
    assert!(report.safety.is_safe());
    Ok(())
}
