//! Quickstart: solve one instance of m-obstruction-free k-set agreement and
//! inspect the outcome.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use set_agreement::model::Params;
use set_agreement::{Adversary, Algorithm, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 2-obstruction-free 3-set agreement among 8 processes: at most 3 distinct
    // values may be decided, and termination is guaranteed whenever at most 2
    // processes keep taking steps.
    let params = Params::new(8, 2, 3)?;
    println!("problem: {params}");
    println!(
        "paper bounds: >= {} and <= {} registers (Figure 1)",
        params.repeated_lower_bound(),
        params.register_upper_bound()
    );

    // Run the Figure 3 algorithm: every process proposes a distinct value,
    // the schedule is chaotic for 400 steps, then only two processes survive.
    let report = Scenario::new(params)
        .algorithm(Algorithm::OneShot)
        .adversary(Adversary::Obstruction {
            contention_steps: 400,
            survivors: 2,
            seed: 2015,
        })
        .run();

    println!("steps executed: {}", report.steps);
    println!(
        "distinct values decided: {} (k = {})",
        report.distinct_outputs(1),
        params.k()
    );
    println!("decided values: {:?}", report.decisions.outputs(1));
    println!(
        "locations written: {} (snapshot has {} components)",
        report.locations_written,
        params.snapshot_components()
    );
    println!("validity and k-agreement: {}", report.safety);
    assert!(report.safety.is_safe());
    assert!(report.survivors_decided);
    Ok(())
}
