//! Offline shim for the subset of the `rand` crate this workspace uses:
//! a seedable deterministic generator (`rngs::StdRng`) and `Rng::gen_range`
//! over half-open and inclusive integer ranges.
//!
//! The generator is SplitMix64 — deterministic and well-distributed, but its
//! stream is **not** the upstream `StdRng` stream. The workspace only relies
//! on reproducibility-given-a-seed, never on a specific stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random-number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen_range` can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniformly distributed value using `next` as entropy source.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (next() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return next() as $t;
                }
                start + (next() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32);

/// The subset of the `rand::Rng` interface the workspace uses.
pub trait Rng {
    /// Returns the next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed value in `range`.
    ///
    /// Sampling uses a modulo reduction; the bias is at most 2⁻⁴⁰ for the
    /// range widths used in this workspace (< 2²⁴), far below anything the
    /// schedulers or workloads could observe.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(&mut || self.next_u64())
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(0u64..3);
            assert!(w < 3);
            let x = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
