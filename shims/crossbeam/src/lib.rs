//! Offline shim for the subset of `crossbeam` this workspace uses: an
//! unbounded MPSC channel, delegating to `std::sync::mpsc`.

#![forbid(unsafe_code)]

/// Channel constructors and types, mirroring `crossbeam::channel`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, SendError, Sender, TryRecvError};

    /// Creates an unbounded channel. `Sender` is cloneable, so many producer
    /// threads can feed one consumer.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_in_from_many_senders() {
        let (tx, rx) = channel::unbounded::<u64>();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_recv_reports_empty() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert!(rx.try_recv().is_err());
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
    }
}
