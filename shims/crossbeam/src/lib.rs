//! Offline shim for the subset of `crossbeam` this workspace uses: an
//! unbounded MPSC channel (delegating to `std::sync::mpsc`) and the
//! `deque` work-stealing primitives (`Worker`/`Stealer`/`Injector`).

#![forbid(unsafe_code)]

/// Channel constructors and types, mirroring `crossbeam::channel`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, SendError, Sender, TryRecvError};

    /// Creates an unbounded channel. `Sender` is cloneable, so many producer
    /// threads can feed one consumer.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Work-stealing deques, mirroring `crossbeam::deque`.
///
/// The upstream crate implements lock-free Chase–Lev deques; this shim uses
/// a `Mutex<VecDeque>` per queue, which preserves the API and the scheduling
/// structure (owner pops from one end, thieves steal from the other,
/// contended steals report [`Steal::Retry`]) at the cost of raw throughput.
/// Callers written against this module port to the real crate unchanged.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, TryLockError};

    /// How many tasks [`Injector::steal_batch_and_pop`] and
    /// [`Stealer::steal_batch_and_pop`] move to the destination worker at
    /// most (the stolen-and-returned task is additional).
    const BATCH: usize = 32;

    /// The result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// `true` if this is [`Steal::Success`].
        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        /// Returns the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }
    }

    #[derive(Debug)]
    struct Queue<T> {
        tasks: Mutex<VecDeque<T>>,
        /// `true` for LIFO workers: the owner pops from the back (where it
        /// pushes), thieves always steal from the front.
        lifo: bool,
    }

    /// A deque owned by a single worker thread. The owner pushes and pops
    /// locally; other threads steal through [`Stealer`] handles.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Queue<T>>,
    }

    impl<T> Worker<T> {
        /// Creates a FIFO worker queue (owner pops the oldest task).
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Queue {
                    tasks: Mutex::new(VecDeque::new()),
                    lifo: false,
                }),
            }
        }

        /// Creates a LIFO worker queue (owner pops the newest task).
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Queue {
                    tasks: Mutex::new(VecDeque::new()),
                    lifo: true,
                }),
            }
        }

        /// Pushes a task onto the owner's end of the queue.
        pub fn push(&self, task: T) {
            self.queue.tasks.lock().unwrap().push_back(task);
        }

        /// Pops a task from the owner's end of the queue.
        pub fn pop(&self) -> Option<T> {
            let mut tasks = self.queue.tasks.lock().unwrap();
            if self.queue.lifo {
                tasks.pop_back()
            } else {
                tasks.pop_front()
            }
        }

        /// `true` if the queue has no tasks.
        pub fn is_empty(&self) -> bool {
            self.queue.tasks.lock().unwrap().is_empty()
        }

        /// The number of tasks in the queue.
        pub fn len(&self) -> usize {
            self.queue.tasks.lock().unwrap().len()
        }

        /// Creates a stealer handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A handle for stealing tasks from another thread's [`Worker`].
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Queue<T>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the thief's end of the queue. A contended
        /// queue reports [`Steal::Retry`] instead of blocking.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.tasks.try_lock() {
                Ok(mut tasks) => match tasks.pop_front() {
                    Some(task) => Steal::Success(task),
                    None => Steal::Empty,
                },
                Err(TryLockError::WouldBlock) => Steal::Retry,
                Err(TryLockError::Poisoned(p)) => match p.into_inner().pop_front() {
                    Some(task) => Steal::Success(task),
                    None => Steal::Empty,
                },
            }
        }

        /// Steals a batch of tasks into `dest` and pops one of them.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            steal_batch(&self.queue.tasks, dest)
        }
    }

    /// A FIFO queue shared by all workers — the global frontier tasks are
    /// injected into before the workers split them up.
    #[derive(Debug)]
    pub struct Injector<T> {
        tasks: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                tasks: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the global queue.
        pub fn push(&self, task: T) {
            self.tasks.lock().unwrap().push_back(task);
        }

        /// `true` if the queue has no tasks.
        pub fn is_empty(&self) -> bool {
            self.tasks.lock().unwrap().is_empty()
        }

        /// Steals one task from the global queue.
        pub fn steal(&self) -> Steal<T> {
            match self.tasks.try_lock() {
                Ok(mut tasks) => match tasks.pop_front() {
                    Some(task) => Steal::Success(task),
                    None => Steal::Empty,
                },
                Err(TryLockError::WouldBlock) => Steal::Retry,
                Err(TryLockError::Poisoned(p)) => match p.into_inner().pop_front() {
                    Some(task) => Steal::Success(task),
                    None => Steal::Empty,
                },
            }
        }

        /// Steals a batch of tasks into `dest` and pops one of them — the
        /// canonical way for a worker to refill its local queue.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            steal_batch(&self.tasks, dest)
        }
    }

    fn steal_batch<T>(source: &Mutex<VecDeque<T>>, dest: &Worker<T>) -> Steal<T> {
        let mut tasks = match source.try_lock() {
            Ok(tasks) => tasks,
            Err(TryLockError::WouldBlock) => return Steal::Retry,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
        };
        let Some(first) = tasks.pop_front() else {
            return Steal::Empty;
        };
        let batch = tasks.len().min(BATCH);
        if batch > 0 {
            let mut dest_tasks = dest.queue.tasks.lock().unwrap();
            dest_tasks.extend(tasks.drain(..batch));
        }
        Steal::Success(first)
    }
}

#[cfg(test)]
mod deque_tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn worker_push_pop_orders() {
        let fifo = Worker::new_fifo();
        fifo.push(1);
        fifo.push(2);
        assert_eq!(fifo.pop(), Some(1));
        let lifo = Worker::new_lifo();
        lifo.push(1);
        lifo.push(2);
        assert_eq!(lifo.pop(), Some(2));
        assert_eq!(lifo.len(), 1);
        assert!(!lifo.is_empty());
    }

    #[test]
    fn stealers_take_from_the_opposite_end() {
        let worker = Worker::new_lifo();
        worker.push(1);
        worker.push(2);
        let stealer = worker.stealer();
        // The thief takes the oldest task, the owner keeps the newest.
        assert_eq!(stealer.steal(), Steal::Success(1));
        assert_eq!(worker.pop(), Some(2));
        assert_eq!(stealer.steal(), Steal::<i32>::Empty);
        assert!(stealer.clone().steal().success().is_none());
    }

    #[test]
    fn injector_batches_into_local_queues() {
        let injector = Injector::new();
        for i in 0..10 {
            injector.push(i);
        }
        let local = Worker::new_fifo();
        let got = injector.steal_batch_and_pop(&local);
        assert_eq!(got, Steal::Success(0));
        assert!(!local.is_empty(), "a batch must land in the local queue");
        let mut rest: Vec<i32> = std::iter::from_fn(|| local.pop()).collect();
        while let Steal::Success(task) = injector.steal() {
            rest.push(task);
        }
        rest.sort_unstable();
        assert_eq!(rest, (1..10).collect::<Vec<_>>());
        assert!(injector.is_empty());
    }

    #[test]
    fn concurrent_stealing_drains_everything_exactly_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let injector = Injector::new();
        let total = 1000u64;
        for i in 0..total {
            injector.push(i);
        }
        let sum = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let local = Worker::new_fifo();
                    loop {
                        let task = local.pop().or_else(|| loop {
                            match injector.steal_batch_and_pop(&local) {
                                Steal::Success(task) => break Some(task),
                                Steal::Empty => break None,
                                Steal::Retry => continue,
                            }
                        });
                        match task {
                            Some(task) => {
                                sum.fetch_add(task, Ordering::Relaxed);
                            }
                            None => break,
                        }
                    }
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), total * (total - 1) / 2);
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_in_from_many_senders() {
        let (tx, rx) = channel::unbounded::<u64>();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_recv_reports_empty() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert!(rx.try_recv().is_err());
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
    }
}
