//! Offline shim for the subset of `proptest` this workspace's tests use.
//!
//! Provides value *generation* with the familiar surface — `proptest!`,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `Strategy` with
//! `prop_map`/`prop_flat_map`/`boxed`, integer-range strategies, `any`,
//! `Just` and `collection::vec` — but no shrinking: a failing case panics
//! with the generated inputs visible in the assertion message.
//!
//! Cases are generated deterministically from the test function's name and
//! the case index, so failures reproduce across runs and machines.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator (SplitMix64) used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case, derived from the test's name
    /// hash and the case index.
    pub fn for_case(name_hash: u64, case: u64) -> Self {
        TestRng {
            state: name_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Returns the next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample below zero");
        self.next_u64() % bound
    }
}

/// FNV-1a hash of a test name, used to seed its case stream.
pub fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Object-safe: combinators require `Self: Sized`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for the full domain of `T`.
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

// Signed impls assume non-descending, non-negative-span ranges, which is all
// the length-literal call sites (`0..24`) produce.
impl_range_strategy!(usize, u64, u32, u16, u8, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<V> {
    choices: Vec<BoxedStrategy<V>>,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} choices)", self.choices.len())
    }
}

impl<V> Union<V> {
    /// Creates a union over `choices`; must be non-empty.
    pub fn new(choices: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Union { choices }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.choices.len() as u64) as usize;
        self.choices[idx].generate(rng)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Sources of collection lengths (`proptest`'s `SizeRange` inputs).
    /// Implemented for integer ranges, including the unsuffixed-literal
    /// (`i32`) ranges that appear at call sites like `vec(s, 0..24)`.
    pub trait LenStrategy {
        /// Draws one length.
        fn generate_len(&self, rng: &mut TestRng) -> usize;
    }

    macro_rules! impl_len_strategy {
        ($($t:ty),*) => {$(
            impl LenStrategy for Range<$t> {
                fn generate_len(&self, rng: &mut TestRng) -> usize {
                    self.generate(rng) as usize
                }
            }
            impl LenStrategy for RangeInclusive<$t> {
                fn generate_len(&self, rng: &mut TestRng) -> usize {
                    self.generate(rng) as usize
                }
            }
        )*};
    }

    impl_len_strategy!(usize, i32);

    /// Strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy, L: LenStrategy>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: LenStrategy> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.generate_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test body needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let name_hash = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut prop_rng = $crate::TestRng::for_case(name_hash, case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut prop_rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case(1, 1);
        let strategy = (3usize..=8)
            .prop_flat_map(|n| (Just(n), 1usize..n))
            .prop_map(|(n, k)| (n, k));
        for _ in 0..200 {
            let (n, k) = strategy.generate(&mut rng);
            assert!((3..=8).contains(&n));
            assert!(k >= 1 && k < n);
        }
    }

    #[test]
    fn oneof_explores_every_branch() {
        let mut rng = crate::TestRng::for_case(2, 0);
        let strategy = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[strategy.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn vec_strategy_honors_length_range() {
        let mut rng = crate::TestRng::for_case(3, 0);
        let strategy = crate::collection::vec(any::<u64>(), 2usize..5);
        for _ in 0..50 {
            let v = strategy.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 1u64..100, y in 0usize..4) {
            prop_assert!((1..100).contains(&x));
            prop_assert_ne!(y, 9);
            prop_assert_eq!(y < 4, true);
        }
    }
}
