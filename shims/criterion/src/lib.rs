//! Offline shim for the subset of `criterion` this workspace's benches use.
//!
//! Implements benchmark groups, `BenchmarkId`, `Throughput` and the
//! `criterion_group!`/`criterion_main!` macros with plain wall-clock timing:
//! each benchmark is warmed up for `warm_up_time`, then run for `sample_size`
//! samples (bounded by `measurement_time`), and the mean/min per-iteration
//! times are printed. There is no statistical analysis, HTML report or
//! baseline comparison.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// An identifier `function_name/parameter` for one benchmark in a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter description.
    pub fn new(function: impl Into<String>, parameter: impl ToString) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Throughput annotation; recorded to scale the printed rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Records the throughput of subsequent benchmarks (printed only).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let _ = t;
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: self.measurement_time,
            warm_up: self.warm_up_time,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        if bencher.samples.is_empty() {
            println!("bench {label:<60} (no samples)");
        } else {
            let total: Duration = bencher.samples.iter().sum();
            let mean = total / bencher.samples.len() as u32;
            let min = bencher.samples.iter().min().copied().unwrap_or_default();
            println!(
                "bench {label:<60} mean {mean:>12.2?}  min {min:>12.2?}  ({} samples)",
                bencher.samples.len()
            );
        }
        self
    }

    /// Ends the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Runs and times a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    warm_up: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Calls `routine` repeatedly: first until `warm_up_time` has elapsed,
    /// then `sample_size` timed iterations (stopping early if the
    /// measurement budget runs out).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let warm_up_start = Instant::now();
        loop {
            black_box(routine());
            if warm_up_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if measure_start.elapsed() >= self.budget {
                break;
            }
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0u64;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs >= 3, "routine ran {runs} times");
    }

    #[test]
    fn benchmark_id_renders_both_parts() {
        let id = BenchmarkId::new("algo", "n6_m2_k3");
        assert_eq!(id.to_string(), "algo/n6_m2_k3");
    }
}
