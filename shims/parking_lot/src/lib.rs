//! Offline shim for the subset of `parking_lot` this workspace uses: a
//! `Mutex` whose `lock` does not return a poison `Result`.
//!
//! Delegates to `std::sync::Mutex` and recovers from poisoning (a panicking
//! thread leaves the data in whatever state it reached, exactly like the real
//! `parking_lot`, which has no poisoning at all).

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A re-export of the standard guard type; `lock` below never fails.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion primitive with `parking_lot`'s panic-free `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn concurrent_increments_are_serialized() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn lock_survives_a_poisoning_panic() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
