//! **set-agreement** — a reproduction of *"On the Space Complexity of Set
//! Agreement"* (Delporte-Gallet, Fauconnier, Kuznetsov, Ruppert — PODC 2015).
//!
//! The paper studies how many multi-writer multi-reader registers are needed
//! to solve `m`-obstruction-free `k`-set agreement among `n` processes, in
//! one-shot and repeated form, with and without process identifiers. This
//! workspace implements:
//!
//! * the paper's three algorithms (Figures 3, 4 and 5) and two baselines —
//!   [`algorithms`],
//! * the asynchronous shared-memory substrate they run on (simulated and
//!   threaded registers and snapshot objects, snapshot-from-register
//!   constructions) — [`memory`],
//! * an execution runtime with adversarial schedulers, property checkers and
//!   a bounded exhaustive explorer — [`runtime`],
//! * the bounds of Figure 1 and executable witnesses of both lower-bound
//!   mechanisms — [`lowerbound`],
//! * a goal-directed adversary search that *finds* covering and block-write
//!   witnesses over schedule space, with a replayable witness format shared
//!   with the hand-built constructions — [`search`],
//! * this facade crate, which re-exports everything and adds the unified
//!   execution API — [`ExecutionPlan`] → [`Executor`] → [`ExecutionReport`]
//!   — used by the examples, benches and the sweep engine, plus the
//!   [`Scenario`] shim kept for the original builder surface.
//!
//! # Execution model
//!
//! An execution has three orthogonal axes:
//!
//! 1. **what** runs — an [`ExecutionPlan`]: parameters, [`Algorithm`],
//!    [`Adversary`], workload and step budget;
//! 2. **how** it runs — a [`Backend`]: the deterministic simulator
//!    (`Scheduled`), real OS threads (`Threaded`), the bounded exhaustive
//!    explorer (`Explore`), its work-stealing counterpart
//!    (`ParallelExplore`, byte-identical results at any thread count), or
//!    the goal-directed adversary search (`AdversarySearch`, also
//!    byte-identical at any thread count);
//! 3. **who fails** — crash failures are part of the *adversary*
//!    ([`Adversary::Crash`]), not a backend, so they compose with any
//!    scheduler.
//!
//! An [`Executor`] binds a backend (any [`ExecutionBackend`] trait object)
//! and turns plans into [`ExecutionReport`]s.
//!
//! # Quickstart
//!
//! ```
//! use set_agreement::{Adversary, Algorithm, Backend, ExecutionPlan, Executor};
//! use set_agreement::model::Params;
//!
//! // 2-obstruction-free 3-set agreement among 8 processes, every process
//! // proposing a distinct value, under the obstruction adversary.
//! let params = Params::new(8, 2, 3)?;
//! let plan = ExecutionPlan::new(params)
//!     .algorithm(Algorithm::OneShot)
//!     .adversary(Adversary::Obstruction {
//!         contention_steps: 200,
//!         survivors: 2,
//!         seed: 42,
//!     });
//! let report = Executor::new(Backend::Scheduled)
//!     .execute(&plan)
//!     .expect_scheduled();
//! assert!(report.safety.is_safe());
//! assert!(report.survivors_decided);
//! # Ok::<(), set_agreement::model::ParamsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use sa_core as algorithms;
pub use sa_lowerbound as lowerbound;
pub use sa_memory as memory;
pub use sa_model as model;
pub use sa_runtime as runtime;
pub use sa_search as search;
pub use sa_serve as serve;

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::{
        Adversary, Algorithm, Backend, ExecutionBackend, ExecutionPlan, ExecutionReport, Executor,
        ExploreReport, Scenario, ScenarioReport, ThreadedRunReport,
    };
    pub use sa_core::{
        AnonymousSetAgreement, FullInfoSetAgreement, OneShotSetAgreement, RepeatedSetAgreement,
        SwmrEmulated, WideBaseline,
    };
    pub use sa_lowerbound::bounds::{Figure1, Naming, Setting};
    pub use sa_memory::MemoryMetrics;
    pub use sa_model::{Automaton, Decision, DecisionSet, Params, ProcessId};
    pub use sa_runtime::{
        check_k_agreement, check_validity, ExploreConfig, InputLog, ObstructionScheduler,
        ParallelExploreConfig, ReductionMode, RoundRobin, RunConfig, Scheduler, SearchConfig,
        SearchGoal, ServeClock, ServeLoad, ServeOptions, SymmetryMode, ThreadedConfig, Workload,
    };
    pub use sa_search::{Certificate, SearchReport, SearchStop, VerifyError, Witness};
    pub use sa_serve::{ServeConfig, ServeReport};
}

pub use sa_runtime::{Backend, SearchConfig, SearchGoal, ServeClock, ServeLoad, ServeOptions};

use sa_core::{
    AnonymousSetAgreement, OneShotSetAgreement, RepeatedSetAgreement, SwmrEmulated, WideBaseline,
};
use sa_memory::MemoryMetrics;
use sa_model::{Automaton, DecisionSet, Params, ProcessId};
use sa_runtime::{
    explore, parallel_explore, run_threaded, BurstScheduler, CrashScheduler,
    Executor as StepExecutor, ExploreConfig, ExploredViolation, InputLog, ObstructionScheduler,
    ParallelExploreConfig, RandomScheduler, RoundRobin, RunConfig, SafetyReport, Scheduler,
    SoloScheduler, StopReason, ThreadedConfig, Workload,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Which algorithm of the paper (or baseline) a [`Scenario`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Figure 3: one-shot, `n + 2m − k` snapshot components.
    OneShot,
    /// Figure 4: repeated, `n + 2m − k` snapshot components. The field is the
    /// number of instances each process proposes in.
    Repeated(usize),
    /// Figure 5 restricted to a single instance (no helper register),
    /// `(m+1)(n−k) + m²` components.
    AnonymousOneShot,
    /// Figure 5: anonymous repeated agreement with the helper register. The
    /// field is the number of instances.
    AnonymousRepeated(usize),
    /// The prior-work baseline \[4\]: Figure 3 over `2(n−k)` components
    /// (requires `n ≥ k + 2m`).
    WideBaseline,
    /// The trivial upper bound: Figure 3 emulated over `n` single-writer
    /// full-information registers.
    FullInformation,
}

impl Algorithm {
    /// Every algorithm variant, with repeated variants running `instances`
    /// instances — the catalog campaign sweeps iterate over.
    pub fn catalog(instances: usize) -> Vec<Algorithm> {
        vec![
            Algorithm::OneShot,
            Algorithm::Repeated(instances),
            Algorithm::AnonymousOneShot,
            Algorithm::AnonymousRepeated(instances),
            Algorithm::WideBaseline,
            Algorithm::FullInformation,
        ]
    }

    /// Parses an algorithm from its [`Algorithm::label`] or a short alias
    /// (`oneshot`, `repeated`, `anon-oneshot`, `anon-repeated`, `wide`,
    /// `fullinfo`); repeated variants run `instances` instances.
    pub fn from_label(label: &str, instances: usize) -> Option<Algorithm> {
        match label {
            "figure3-oneshot" | "oneshot" => Some(Algorithm::OneShot),
            "figure4-repeated" | "repeated" => Some(Algorithm::Repeated(instances)),
            "figure5-anon-oneshot" | "anon-oneshot" => Some(Algorithm::AnonymousOneShot),
            "figure5-anon-repeated" | "anon-repeated" => {
                Some(Algorithm::AnonymousRepeated(instances))
            }
            "baseline-wide" | "wide" => Some(Algorithm::WideBaseline),
            "baseline-fullinfo" | "fullinfo" => Some(Algorithm::FullInformation),
            _ => None,
        }
    }

    /// `true` if this algorithm is defined for `params`. Only
    /// [`Algorithm::WideBaseline`] is restricted: the `2(n−k)` construction
    /// of \[4\] needs `n ≥ k + 2m` so that its width covers the Figure 3
    /// minimum.
    pub fn applicable(&self, params: Params) -> bool {
        match self {
            Algorithm::WideBaseline => params.n() >= params.k() + 2 * params.m(),
            _ => true,
        }
    }

    /// A short identifier used in benchmark and experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::OneShot => "figure3-oneshot",
            Algorithm::Repeated(_) => "figure4-repeated",
            Algorithm::AnonymousOneShot => "figure5-anon-oneshot",
            Algorithm::AnonymousRepeated(_) => "figure5-anon-repeated",
            Algorithm::WideBaseline => "baseline-wide",
            Algorithm::FullInformation => "baseline-fullinfo",
        }
    }

    /// The number of instances of repeated agreement this algorithm runs.
    pub fn instances(&self) -> usize {
        match self {
            Algorithm::Repeated(t) | Algorithm::AnonymousRepeated(t) => (*t).max(1),
            _ => 1,
        }
    }

    /// The register cost of this algorithm for the given parameters, using
    /// the accounting of the paper (Theorems 7, 8 and 11): snapshot objects
    /// wider than `n` are charged `n` registers because they can be
    /// implemented from `n` single-writer registers.
    pub fn register_bound(&self, params: Params) -> usize {
        match self {
            Algorithm::OneShot | Algorithm::Repeated(_) => params.register_upper_bound(),
            Algorithm::AnonymousOneShot => params.anonymous_snapshot_components(),
            Algorithm::AnonymousRepeated(_) => params.anonymous_repeated_registers(),
            Algorithm::WideBaseline => 2 * (params.n() - params.k()),
            Algorithm::FullInformation => params.n(),
        }
    }

    /// Converts a measured footprint (distinct plain registers and snapshot
    /// components written) into the paper's *register* accounting.
    ///
    /// For the non-anonymous snapshot-backed algorithms (Figures 3 and 4) a
    /// snapshot object of any width can be implemented from `n` single-writer
    /// registers, so components are charged `min(components, n)` — this is
    /// exactly how the Figure 1 upper bound `min(n + 2m − k, n)` is obtained.
    /// Anonymous processes cannot own single-writer registers, and the
    /// baselines' bounds are stated without the appeal, so everything else is
    /// charged at face value.
    pub fn register_equivalent(
        &self,
        params: Params,
        registers_written: usize,
        components_written: usize,
    ) -> usize {
        match self {
            Algorithm::OneShot | Algorithm::Repeated(_) => {
                registers_written + components_written.min(params.n())
            }
            _ => registers_written + components_written,
        }
    }

    /// The number of base objects (snapshot components plus plain registers)
    /// the implementation actually declares — the quantity
    /// [`ScenarioReport::locations_written`] is bounded by. It differs from
    /// [`Algorithm::register_bound`] only when `n + 2m − k > n`, where the
    /// register accounting appeals to the `n`-single-writer-register
    /// construction.
    pub fn component_bound(&self, params: Params) -> usize {
        match self {
            Algorithm::OneShot | Algorithm::Repeated(_) => params.snapshot_components(),
            Algorithm::AnonymousOneShot => params.anonymous_snapshot_components(),
            Algorithm::AnonymousRepeated(_) => params.anonymous_repeated_registers(),
            Algorithm::WideBaseline => {
                (2 * (params.n() - params.k())).max(params.snapshot_components())
            }
            Algorithm::FullInformation => params.n(),
        }
    }
}

/// The schedule adversary a [`Scenario`] runs under.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Adversary {
    /// Maximally fair round-robin contention.
    RoundRobin,
    /// Uniformly random scheduling with the given seed.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Heavy contention for `contention_steps`, after which only the first
    /// `survivors` processes keep running — the canonical m-obstruction
    /// schedule when `survivors ≤ m`.
    Obstruction {
        /// Steps of all-process contention before the survivors take over.
        contention_steps: u64,
        /// How many processes keep running afterwards.
        survivors: usize,
        /// RNG seed for the contention phase.
        seed: u64,
    },
    /// Only one process ever runs.
    Solo {
        /// The index of the process that runs.
        process: usize,
    },
    /// Random bursts: one process runs for a geometric burst, then another.
    Bursts {
        /// Expected burst length.
        burst_len: u64,
        /// RNG seed.
        seed: u64,
    },
    /// A crash adversary: schedules like `inner`, but each listed process is
    /// crashed (never scheduled again) once it has taken its configured
    /// number of steps. A crash point of 0 means the process never runs.
    Crash {
        /// The scheduler the crash pattern is layered over.
        inner: Box<Adversary>,
        /// `(process, steps before crash)` pairs; processes absent from the
        /// list never crash.
        crash_after: Vec<(usize, u64)>,
    },
}

impl Adversary {
    /// A short identifier used in benchmark and experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Adversary::RoundRobin => "round-robin",
            Adversary::Random { .. } => "random",
            Adversary::Obstruction { .. } => "obstruction",
            Adversary::Solo { .. } => "solo",
            Adversary::Bursts { .. } => "bursts",
            Adversary::Crash { .. } => "crash",
        }
    }

    /// Builds the scheduler for `n` processes.
    pub fn build(&self, n: usize) -> Box<dyn Scheduler> {
        match self {
            Adversary::RoundRobin => Box::new(RoundRobin::new()),
            Adversary::Random { seed } => Box::new(RandomScheduler::new(*seed)),
            Adversary::Obstruction {
                contention_steps,
                survivors,
                seed,
            } => {
                let survivors: Vec<ProcessId> = (0..(*survivors).min(n)).map(ProcessId).collect();
                Box::new(ObstructionScheduler::new(
                    *contention_steps,
                    survivors,
                    *seed,
                ))
            }
            Adversary::Solo { process } => Box::new(SoloScheduler::new(ProcessId(*process % n))),
            Adversary::Bursts { burst_len, seed } => {
                Box::new(BurstScheduler::new(*burst_len, *seed))
            }
            Adversary::Crash { inner, crash_after } => {
                let crash_after: BTreeMap<ProcessId, u64> = crash_after
                    .iter()
                    .map(|(p, steps)| (ProcessId(p % n), *steps))
                    .collect();
                Box::new(CrashScheduler::new(inner.build(n), crash_after))
            }
        }
    }

    /// The processes that the progress condition obliges to decide under this
    /// adversary (those that keep taking steps forever).
    pub fn obligated(&self, n: usize) -> Vec<ProcessId> {
        match self {
            Adversary::Obstruction { survivors, .. } => {
                (0..(*survivors).min(n)).map(ProcessId).collect()
            }
            Adversary::Solo { process } => vec![ProcessId(*process % n)],
            // A crashed process stops taking steps eventually, so the
            // progress condition never obliges it — only the inner
            // adversary's survivors that never crash are on the hook.
            Adversary::Crash { inner, crash_after } => {
                let crashed: BTreeSet<usize> = crash_after.iter().map(|(p, _)| p % n).collect();
                inner
                    .obligated(n)
                    .into_iter()
                    .filter(|p| !crashed.contains(&p.index()))
                    .collect()
            }
            _ => Vec::new(),
        }
    }
}

/// The result of running a [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The parameters the scenario ran with.
    pub params: Params,
    /// The algorithm that ran.
    pub algorithm: Algorithm,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Steps executed.
    pub steps: u64,
    /// All decisions, grouped by instance.
    pub decisions: DecisionSet,
    /// Validity and k-agreement evaluated over the run.
    pub safety: SafetyReport,
    /// `true` if every process the adversary kept scheduling forever decided
    /// every instance it was configured to run.
    pub survivors_decided: bool,
    /// Shared-memory usage metrics.
    pub metrics: MemoryMetrics,
    /// The number of distinct base objects (registers or snapshot
    /// components) actually written during the run.
    pub locations_written: usize,
}

impl ScenarioReport {
    /// The number of distinct values decided in `instance`.
    pub fn distinct_outputs(&self, instance: u64) -> usize {
        self.decisions.distinct_outputs(instance)
    }
}

/// The result of exhaustively exploring a [`Scenario`]'s interleavings with
/// [`Scenario::explore`].
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// The parameters the scenario ran with.
    pub params: Params,
    /// The algorithm explored.
    pub algorithm: Algorithm,
    /// Reachable states visited.
    pub states_visited: u64,
    /// Maximal paths examined.
    pub paths: u64,
    /// The deepest schedule prefix (in steps) the search examined; with
    /// dedup this is the longest non-revisiting path, which can be far
    /// below the depth budget even when the state space is exhausted.
    pub max_depth_reached: u64,
    /// `true` if the search hit a depth or state budget before exhausting
    /// the reachable state space.
    pub truncated: bool,
    /// The first safety violation found, with its witnessing schedule.
    pub violation: Option<ExploredViolation>,
    /// `false` if the violation (if any) was a validity violation.
    pub validity_ok: bool,
    /// `false` if the violation (if any) was a k-agreement violation.
    pub agreement_ok: bool,
    /// Maximum distinct base objects written in any reachable state.
    pub max_locations_written: usize,
    /// Maximum distinct plain registers written in any reachable state.
    pub max_registers_written: usize,
    /// Maximum distinct snapshot components written in any reachable state
    /// (tracked per state, not derived from the other two maxima — they may
    /// be attained in different states).
    pub max_components_written: usize,
    /// Worker threads the exploration ran on (0 = the serial explorer).
    /// Everything else in the report is independent of this value:
    /// [`Backend::ParallelExplore`] results are byte-identical at any
    /// thread count.
    pub threads: usize,
    /// Peak size of the frontier of states awaiting expansion (the deepest
    /// DFS stack for the serial explorer, the widest BFS level for the
    /// parallel one).
    pub frontier_peak: u64,
    /// Entries held by the dedup seen-set when the search stopped.
    pub seen_entries: u64,
    /// Rough, deterministic estimate of the bytes held by the explorer's
    /// data structures at their peak (see
    /// [`Exploration::approx_bytes`](sa_runtime::Exploration)).
    pub approx_bytes: u64,
    /// `true` if the search deduplicated up to process-id symmetry:
    /// [`SymmetryMode::ProcessIds`](sa_runtime::SymmetryMode) was requested
    /// **and** every automaton opted in via its
    /// [`symmetry_class`](sa_model::Automaton::symmetry_class). `false`
    /// covers both "not requested" and "requested but fell back" (e.g. the
    /// single-writer emulation, whose register addresses are process ids).
    pub symmetry_applied: bool,
    /// Orbit representatives visited. This always equals
    /// [`states_visited`](ExploreReport::states_visited) — with symmetry
    /// applied the visited states *are* one representative per explored
    /// orbit; without it every state is its own orbit — and is carried
    /// separately so symmetry-enabled records are self-describing.
    pub orbit_states: u64,
    /// A lower bound on the number of distinct reachable configurations the
    /// visited states represent (see
    /// [`Exploration::full_states_lower_bound`](sa_runtime::Exploration)).
    /// `full_states_lower_bound / orbit_states` is the reduction factor the
    /// quotient achieved; 1x without symmetry.
    pub full_states_lower_bound: u64,
    /// `true` if the search pruned commuting interleavings with sleep sets:
    /// [`ReductionMode::SleepSets`](sa_runtime::ReductionMode) was requested
    /// **and** the explorer could honor it (dedup on, at most 64 processes).
    /// Verdicts and `states_visited` are unaffected on exhausted spaces;
    /// only [`expansions`](ExploreReport::expansions) shrinks.
    pub reduction_applied: bool,
    /// Successor expansions the search performed (state × enabled-process
    /// pairs actually stepped). Without reduction this is the raw edge
    /// count of the explored graph; sleep sets shrink it.
    pub expansions: u64,
    /// Expansions skipped because a sleeping sibling order was provably
    /// commuting (0 without reduction).
    /// `(expansions + sleep_pruned) / expansions` is the multiplicative
    /// reduction factor on top of whatever symmetry already removed.
    pub sleep_pruned: u64,
    /// Expansions performed from persistent/backtrack sets under
    /// [`ReductionMode::PersistentSets`](sa_runtime::ReductionMode) (0
    /// otherwise): every DPOR expansion for the serial explorer, the
    /// expansions at cut states for the breadth-first one.
    pub persistent_expanded: u64,
    /// Enabled transitions persistent-set selection left permanently
    /// unexpanded — roots of subtrees proven redundant (0 without
    /// persistent-set reduction). Unlike sleep sets, this cut removes
    /// *states*, so `states_visited` shrinks with it.
    pub states_cut: u64,
}

impl ExploreReport {
    /// `true` if the safety properties hold in **every** reachable
    /// configuration within the bounds — no violation found and the state
    /// space was exhausted, not truncated.
    ///
    /// Dedup keys are collision-resistant 128-bit hashes of the full
    /// canonical state (see
    /// [`Exploration::verified`](sa_runtime::Exploration::verified) for the
    /// precise guarantee), so this claim does not rest on a 64-bit hash
    /// never colliding.
    pub fn verified(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }

    /// `true` if no violation was found (weaker than [`verified`]: the
    /// search may have been truncated).
    ///
    /// [`verified`]: ExploreReport::verified
    pub fn safe(&self) -> bool {
        self.validity_ok && self.agreement_ok
    }
}

/// The result of running an [`ExecutionPlan`] on [`Backend::Threaded`]:
/// the same automata driven by one OS thread per process against the
/// lock-based shared memory.
///
/// Unlike a [`ScenarioReport`], nothing here is deterministic beyond the
/// inputs: the hardware decides the linearization order, so consumers
/// assert *safety counters* (validity, k-agreement, space bounds), never
/// step traces. Given the same [`ThreadedConfig::seed`] the run is
/// reproducible **up to interleaving** — inputs and spawn order are pinned.
#[derive(Debug, Clone)]
pub struct ThreadedRunReport {
    /// The parameters the plan ran with.
    pub params: Params,
    /// The algorithm that ran.
    pub algorithm: Algorithm,
    /// The threaded configuration (per-thread budget, stagger, seed).
    pub config: ThreadedConfig,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Total shared-memory steps across all threads.
    pub steps: u64,
    /// Steps taken by each process.
    pub steps_per_process: Vec<u64>,
    /// Which processes halted (completed all their operations) in budget.
    pub halted: Vec<bool>,
    /// All decisions, grouped by instance.
    pub decisions: DecisionSet,
    /// Decisions in wall-clock arrival order — the only ordering evidence a
    /// threaded run yields (e.g. that each process decides its repeated
    /// instances in instance order).
    pub arrival_order: Vec<(ProcessId, model::Decision)>,
    /// Validity and k-agreement evaluated over the run.
    pub safety: SafetyReport,
    /// Shared-memory usage metrics.
    pub metrics: MemoryMetrics,
    /// Distinct base objects (registers or snapshot components) written.
    pub locations_written: usize,
}

impl ThreadedRunReport {
    /// `true` if every process halted within its budget. Not guaranteed for
    /// obstruction-free algorithms when all `n` threads keep contending —
    /// that is the paper's whole point — so tests assert safety, not this.
    pub fn all_halted(&self) -> bool {
        self.halted.iter().all(|h| *h)
    }

    /// Aggregate throughput in shared-memory steps per second (0.0 when the
    /// run was too fast for the clock to resolve).
    pub fn steps_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.steps as f64 / secs
        } else {
            0.0
        }
    }
}

/// The result of executing an [`ExecutionPlan`] — one variant per
/// [`Backend`], with backend-agnostic accessors for the fields campaigns
/// aggregate.
#[derive(Debug, Clone)]
pub enum ExecutionReport {
    /// A [`Backend::Scheduled`] run.
    Scheduled(ScenarioReport),
    /// A [`Backend::Threaded`] run.
    Threaded(ThreadedRunReport),
    /// A [`Backend::Explore`] exhaustive exploration.
    Explored(ExploreReport),
    /// A [`Backend::Serve`] service run (boxed: the report carries the
    /// full decided-value log and latency histogram).
    Served(Box<sa_serve::ServeReport>),
    /// A [`Backend::AdversarySearch`] goal-directed search (boxed: the
    /// report carries the full witness, schedule included).
    Searched(Box<sa_search::SearchReport>),
}

impl ExecutionReport {
    /// The label of the backend that produced this report.
    pub fn backend_label(&self) -> &'static str {
        match self {
            ExecutionReport::Scheduled(_) => "scheduled",
            ExecutionReport::Threaded(_) => "threaded",
            ExecutionReport::Explored(r) if r.threads > 0 => "parallel-explore",
            ExecutionReport::Explored(_) => "explore",
            ExecutionReport::Served(_) => "serve",
            ExecutionReport::Searched(_) => "adversary-search",
        }
    }

    /// `true` if validity and k-agreement held (for explorations: in every
    /// configuration the search reached; for service runs: in every batch).
    pub fn safe(&self) -> bool {
        match self {
            ExecutionReport::Scheduled(r) => r.safety.is_safe(),
            ExecutionReport::Threaded(r) => r.safety.is_safe(),
            ExecutionReport::Explored(r) => r.safe(),
            ExecutionReport::Served(r) => r.safety_violations() == 0,
            // A search hunts structure, not violations: the only thing
            // that can go wrong is its witness failing to replay.
            ExecutionReport::Searched(r) => r.verified,
        }
    }

    /// Steps executed (0 for explorations, which count states instead).
    pub fn steps(&self) -> u64 {
        match self {
            ExecutionReport::Scheduled(r) => r.steps,
            ExecutionReport::Threaded(r) => r.steps,
            ExecutionReport::Explored(_) => 0,
            ExecutionReport::Served(r) => r.steps,
            ExecutionReport::Searched(_) => 0,
        }
    }

    /// Distinct base objects written (for explorations: the maximum over
    /// all reachable states; for searches: the witness's `written ∪
    /// covered` count; 0 for service runs, whose instances each use
    /// private short-lived memory).
    pub fn locations_written(&self) -> usize {
        match self {
            ExecutionReport::Scheduled(r) => r.locations_written,
            ExecutionReport::Threaded(r) => r.locations_written,
            ExecutionReport::Explored(r) => r.max_locations_written,
            ExecutionReport::Served(_) => 0,
            ExecutionReport::Searched(r) => {
                r.witness.as_ref().map_or(0, |w| w.certificate.registers)
            }
        }
    }

    /// The scheduled report, if this was a [`Backend::Scheduled`] run.
    pub fn as_scheduled(&self) -> Option<&ScenarioReport> {
        match self {
            ExecutionReport::Scheduled(r) => Some(r),
            _ => None,
        }
    }

    /// The threaded report, if this was a [`Backend::Threaded`] run.
    pub fn as_threaded(&self) -> Option<&ThreadedRunReport> {
        match self {
            ExecutionReport::Threaded(r) => Some(r),
            _ => None,
        }
    }

    /// The exploration report, if this was a [`Backend::Explore`] run.
    pub fn as_explored(&self) -> Option<&ExploreReport> {
        match self {
            ExecutionReport::Explored(r) => Some(r),
            _ => None,
        }
    }

    /// The service report, if this was a [`Backend::Serve`] run.
    pub fn as_served(&self) -> Option<&sa_serve::ServeReport> {
        match self {
            ExecutionReport::Served(r) => Some(r),
            _ => None,
        }
    }

    /// The search report, if this was a [`Backend::AdversarySearch`] run.
    pub fn as_searched(&self) -> Option<&sa_search::SearchReport> {
        match self {
            ExecutionReport::Searched(r) => Some(r),
            _ => None,
        }
    }

    /// Unwraps a [`Backend::Scheduled`] report.
    ///
    /// # Panics
    ///
    /// Panics if another backend produced this report.
    pub fn expect_scheduled(self) -> ScenarioReport {
        match self {
            ExecutionReport::Scheduled(r) => r,
            other => panic!(
                "expected a scheduled report, got {:?}",
                other.backend_label()
            ),
        }
    }

    /// Unwraps a [`Backend::Threaded`] report.
    ///
    /// # Panics
    ///
    /// Panics if another backend produced this report.
    pub fn expect_threaded(self) -> ThreadedRunReport {
        match self {
            ExecutionReport::Threaded(r) => r,
            other => panic!(
                "expected a threaded report, got {:?}",
                other.backend_label()
            ),
        }
    }

    /// Unwraps a [`Backend::Explore`] report.
    ///
    /// # Panics
    ///
    /// Panics if another backend produced this report.
    pub fn expect_explored(self) -> ExploreReport {
        match self {
            ExecutionReport::Explored(r) => r,
            other => panic!(
                "expected an exploration report, got {:?}",
                other.backend_label()
            ),
        }
    }

    /// Unwraps a [`Backend::Serve`] report.
    ///
    /// # Panics
    ///
    /// Panics if another backend produced this report.
    pub fn expect_served(self) -> sa_serve::ServeReport {
        match self {
            ExecutionReport::Served(r) => *r,
            other => panic!("expected a service report, got {:?}", other.backend_label()),
        }
    }

    /// Unwraps a [`Backend::AdversarySearch`] report.
    ///
    /// # Panics
    ///
    /// Panics if another backend produced this report.
    pub fn expect_searched(self) -> sa_search::SearchReport {
        match self {
            ExecutionReport::Searched(r) => *r,
            other => panic!("expected a search report, got {:?}", other.backend_label()),
        }
    }
}

/// A declarative description of **what** to execute: parameters, algorithm,
/// workload, adversary and step budget. **How** it executes is the
/// [`Executor`]'s backend, so the same plan can be simulated, run on real
/// threads, or exhaustively explored without being rebuilt.
///
/// Backends ignore the parts of the plan that do not apply to them: the
/// threaded backend lets the hardware schedule (the adversary is unused),
/// and the explorer quantifies over *all* schedules (adversary unused) with
/// `max_steps` reinterpreted by [`ExploreConfig`]'s own budgets.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    params: Params,
    algorithm: Algorithm,
    adversary: Adversary,
    workload: Option<Workload>,
    max_steps: u64,
}

impl ExecutionPlan {
    /// Creates a plan with the default algorithm (Figure 3 one-shot), a
    /// round-robin adversary, an all-distinct workload and a one-million-step
    /// budget.
    pub fn new(params: Params) -> Self {
        ExecutionPlan {
            params,
            algorithm: Algorithm::OneShot,
            adversary: Adversary::RoundRobin,
            workload: None,
            max_steps: 1_000_000,
        }
    }

    /// Selects the algorithm to run.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the adversary schedule (used by [`Backend::Scheduled`] only).
    pub fn adversary(mut self, adversary: Adversary) -> Self {
        self.adversary = adversary;
        self
    }

    /// Supplies an explicit workload (inputs per process and instance). The
    /// default is [`Workload::all_distinct`].
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Sets the step budget ([`Backend::Scheduled`]; the other backends
    /// carry their own budgets in their configs).
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// The parameters of this plan.
    pub fn params(&self) -> Params {
        self.params
    }

    /// The algorithm this plan runs.
    pub fn algorithm_selected(&self) -> Algorithm {
        self.algorithm
    }

    /// The adversary this plan schedules under ([`Backend::Scheduled`]).
    pub fn adversary_selected(&self) -> &Adversary {
        &self.adversary
    }

    /// Executes this plan on `backend` — shorthand for
    /// `Executor::new(backend).execute(&plan)`.
    pub fn execute(&self, backend: Backend) -> ExecutionReport {
        Executor::new(backend).execute(self)
    }

    fn effective_workload(&self) -> Workload {
        self.workload
            .clone()
            .unwrap_or_else(|| Workload::all_distinct(self.params.n(), self.algorithm.instances()))
    }

    /// Builds the automata for the configured algorithm and hands them to
    /// `driver` — the single place where the algorithm dispatch happens, so
    /// every backend constructs identical systems.
    fn with_automata<D: AutomataDriver>(&self, driver: D) -> D::Output {
        let params = self.params;
        let workload = self.effective_workload();
        let instances = self.algorithm.instances();
        match self.algorithm {
            Algorithm::OneShot => driver.drive(
                self,
                (0..params.n())
                    .map(|p| OneShotSetAgreement::new(params, ProcessId(p), workload.input(p, 1)))
                    .collect(),
                &workload,
            ),
            Algorithm::Repeated(_) => driver.drive(
                self,
                (0..params.n())
                    .map(|p| {
                        let inputs = (1..=instances as u64)
                            .map(|t| workload.input(p, t))
                            .collect();
                        RepeatedSetAgreement::new(params, ProcessId(p), inputs)
                            .expect("inputs are non-empty and ids are in range")
                    })
                    .collect(),
                &workload,
            ),
            Algorithm::AnonymousOneShot => driver.drive(
                self,
                (0..params.n())
                    .map(|p| AnonymousSetAgreement::one_shot(params, workload.input(p, 1)))
                    .collect(),
                &workload,
            ),
            Algorithm::AnonymousRepeated(_) => driver.drive(
                self,
                (0..params.n())
                    .map(|p| {
                        let inputs = (1..=instances as u64)
                            .map(|t| workload.input(p, t))
                            .collect();
                        AnonymousSetAgreement::repeated(params, inputs)
                            .expect("inputs are non-empty")
                    })
                    .collect(),
                &workload,
            ),
            Algorithm::WideBaseline => driver.drive(
                self,
                (0..params.n())
                    .map(|p| {
                        WideBaseline::new(params, ProcessId(p), workload.input(p, 1))
                            .expect("WideBaseline requires n >= k + 2m; check before selecting it")
                    })
                    .collect(),
                &workload,
            ),
            Algorithm::FullInformation => driver.drive(
                self,
                (0..params.n())
                    .map(|p| {
                        SwmrEmulated::<OneShotSetAgreement>::one_shot(
                            params,
                            ProcessId(p),
                            workload.input(p, 1),
                        )
                    })
                    .collect(),
                &workload,
            ),
        }
    }

    /// One sampled execution under the plan's adversary on the
    /// deterministic simulator.
    fn run_scheduled<A>(&self, automata: Vec<A>, workload: &Workload) -> ScenarioReport
    where
        A: Automaton + Clone + Debug + Hash,
        A::Value: Clone + Eq + Debug + Hash,
    {
        let mut executor = StepExecutor::new(automata);
        let mut scheduler = self.adversary.build(self.params.n());
        let report = executor.run(&mut *scheduler, RunConfig::with_max_steps(self.max_steps));

        let mut inputs = InputLog::new();
        inputs.record_matrix(workload.matrix());
        let safety = SafetyReport::evaluate(self.params.k(), &inputs, &report.decisions);

        let obligated = self.adversary.obligated(self.params.n());
        let survivors_decided = obligated
            .iter()
            .all(|p| report.halted.get(p.index()).copied().unwrap_or(false));

        ScenarioReport {
            params: self.params,
            algorithm: self.algorithm,
            stop: report.stop,
            steps: report.steps,
            locations_written: report.metrics.distinct_locations_written(),
            decisions: report.decisions,
            safety,
            survivors_decided,
            metrics: report.metrics,
        }
    }

    /// One execution on real OS threads: the hardware linearizes, the
    /// adversary is unused, and the report carries wall-clock throughput.
    fn run_on_threads<A>(
        &self,
        automata: Vec<A>,
        workload: &Workload,
        config: ThreadedConfig,
    ) -> ThreadedRunReport
    where
        A: Automaton + Send,
        A::Value: Clone + Eq + Debug + Send + Sync,
    {
        let start = Instant::now();
        let report = run_threaded(automata, config);
        // Prefer the runtime's own measurement but never report a zero wall
        // clock for a run that visibly took time.
        let wall = if report.wall > Duration::ZERO {
            report.wall
        } else {
            start.elapsed()
        };

        let mut inputs = InputLog::new();
        inputs.record_matrix(workload.matrix());
        let safety = SafetyReport::evaluate(self.params.k(), &inputs, &report.decisions);

        ThreadedRunReport {
            params: self.params,
            algorithm: self.algorithm,
            config,
            wall,
            steps: report.total_steps(),
            steps_per_process: report.steps_per_process,
            halted: report.halted,
            locations_written: report.metrics.distinct_locations_written(),
            decisions: report.decisions,
            arrival_order: report.arrival_order,
            safety,
            metrics: report.metrics,
        }
    }

    /// Bounded exhaustive exploration of every interleaving, checking
    /// validity and k-agreement in each reachable configuration.
    fn run_exploration<A>(
        &self,
        automata: Vec<A>,
        workload: &Workload,
        config: ExploreConfig,
    ) -> ExploreReport
    where
        A: Automaton + Clone + Debug + Hash,
        A::Value: Clone + Eq + Debug + Hash,
    {
        let executor = StepExecutor::new(automata);
        let probe = SafetyProbe::new(self.params.k(), workload);
        let result = explore(&executor, config, |exec| probe.check(exec));
        self.explore_report(result, probe, 0)
    }

    /// Bounded exhaustive exploration on the work-stealing worker pool —
    /// the same check as `run_exploration`, byte-identical at any thread
    /// count.
    fn run_parallel_exploration<A>(
        &self,
        automata: Vec<A>,
        workload: &Workload,
        config: ParallelExploreConfig,
    ) -> ExploreReport
    where
        A: Automaton + Clone + Debug + Hash + Send + Sync,
        A::Value: Clone + Eq + Debug + Hash + Send + Sync,
    {
        let executor = StepExecutor::new(automata);
        let probe = SafetyProbe::new(self.params.k(), workload);
        let result = parallel_explore(&executor, config, |exec| probe.check(exec));
        self.explore_report(result, probe, config.effective_threads())
    }

    /// Goal-directed adversary search over the same schedule space the
    /// explorers cover, hunting lower-bound witness structure instead of
    /// safety violations.
    fn run_search<A>(&self, automata: Vec<A>, config: SearchConfig) -> sa_search::SearchReport
    where
        A: Automaton + Clone + Hash + Send + Sync,
        A::Value: Clone + Eq + Debug + Hash + Send + Sync,
    {
        let executor = StepExecutor::new(automata);
        sa_search::search(&executor, config)
    }

    fn explore_report(
        &self,
        result: sa_runtime::Exploration,
        probe: SafetyProbe,
        threads: usize,
    ) -> ExploreReport {
        ExploreReport {
            params: self.params,
            algorithm: self.algorithm,
            states_visited: result.states_visited,
            paths: result.paths,
            max_depth_reached: result.max_depth_reached,
            truncated: result.truncated,
            violation: result.violation,
            validity_ok: !probe.violated_validity.into_inner(),
            agreement_ok: !probe.violated_agreement.into_inner(),
            max_locations_written: probe.max_locations.into_inner(),
            max_registers_written: probe.max_registers.into_inner(),
            max_components_written: probe.max_components.into_inner(),
            threads,
            frontier_peak: result.frontier_peak,
            seen_entries: result.seen_entries,
            approx_bytes: result.approx_bytes,
            symmetry_applied: result.symmetry_applied,
            orbit_states: result.states_visited,
            full_states_lower_bound: result.full_states_lower_bound,
            reduction_applied: result.reduction_applied,
            expansions: result.expansions,
            sleep_pruned: result.sleep_pruned,
            persistent_expanded: result.persistent_expanded,
            states_cut: result.states_cut,
        }
    }
}

/// The per-state safety check both explorers run: validity and k-agreement,
/// plus running maxima of the space actually used. Interior mutability
/// (atomics) lets the parallel explorer's workers share one probe; the
/// maxima and flags are monotone, so the accumulated result is independent
/// of evaluation order.
struct SafetyProbe {
    k: usize,
    /// Validity: anything decided in instance t must have been proposed
    /// by some process in instance t.
    allowed: BTreeMap<u64, BTreeSet<u64>>,
    max_locations: AtomicUsize,
    max_registers: AtomicUsize,
    max_components: AtomicUsize,
    violated_validity: AtomicBool,
    violated_agreement: AtomicBool,
}

impl SafetyProbe {
    fn new(k: usize, workload: &Workload) -> Self {
        let mut allowed: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
        for p in 0..workload.processes() {
            for (i, value) in workload.sequence(p).iter().enumerate() {
                allowed.entry(i as u64 + 1).or_default().insert(*value);
            }
        }
        SafetyProbe {
            k,
            allowed,
            max_locations: AtomicUsize::new(0),
            max_registers: AtomicUsize::new(0),
            max_components: AtomicUsize::new(0),
            violated_validity: AtomicBool::new(false),
            violated_agreement: AtomicBool::new(false),
        }
    }

    fn check<A>(&self, exec: &StepExecutor<A>) -> Option<String>
    where
        A: Automaton,
        A::Value: Clone + Eq + Debug,
    {
        let metrics = exec.memory().metrics();
        let locations = metrics.distinct_locations_written();
        let registers = metrics.registers_written();
        self.max_locations.fetch_max(locations, Ordering::Relaxed);
        self.max_registers.fetch_max(registers, Ordering::Relaxed);
        self.max_components
            .fetch_max(locations - registers, Ordering::Relaxed);
        for instance in exec.decisions().instances() {
            let outputs = exec.decisions().outputs(instance);
            if let Some(bad) = outputs
                .iter()
                .find(|v| !self.allowed.get(&instance).is_some_and(|a| a.contains(v)))
            {
                self.violated_validity.store(true, Ordering::Relaxed);
                return Some(format!(
                    "instance {instance} decided {bad}, which nobody proposed"
                ));
            }
            if outputs.len() > self.k {
                self.violated_agreement.store(true, Ordering::Relaxed);
                return Some(format!(
                    "instance {instance} has {} distinct outputs {outputs:?}, \
                     exceeding k = {}",
                    outputs.len(),
                    self.k
                ));
            }
        }
        None
    }
}

/// An execution backend behind object-safe dispatch: anything that can turn
/// an [`ExecutionPlan`] into an [`ExecutionReport`].
///
/// The built-in implementation is the [`Backend`] enum itself — an
/// [`Executor`] is "the `Backend` enum behind one trait object". Downstream
/// code can implement this trait to plug in custom backends (e.g. a
/// distributed or work-stealing executor) and run unchanged plans through
/// [`Executor::with_backend`].
pub trait ExecutionBackend: Debug {
    /// A short identifier used in records and reports.
    fn label(&self) -> &'static str;

    /// Executes the plan.
    fn execute(&self, plan: &ExecutionPlan) -> ExecutionReport;
}

impl ExecutionBackend for Backend {
    fn label(&self) -> &'static str {
        Backend::label(self)
    }

    fn execute(&self, plan: &ExecutionPlan) -> ExecutionReport {
        if let Backend::Serve(options) = self {
            // The service builds its own automata, one fresh Figure 4
            // instance per batch, so it bypasses the plan's automata
            // construction; the plan contributes the cell (m, k) and the
            // per-batch step budget.
            let config = sa_serve::ServeConfig {
                m: plan.params.m(),
                k: plan.params.k(),
                options: *options,
                max_steps_per_batch: plan.max_steps,
            };
            return ExecutionReport::Served(Box::new(sa_serve::serve(&config)));
        }
        plan.with_automata(BackendDriver { backend: self })
    }
}

/// Executes [`ExecutionPlan`]s on a fixed backend.
///
/// This is the single execution surface of the workspace: the examples, the
/// bench binaries and the sweep engine all run through it, so an execution
/// differs between a campaign and a one-off test only in *what* plan it was
/// given, never in how the system was assembled.
#[derive(Debug)]
pub struct Executor {
    backend: Box<dyn ExecutionBackend>,
}

impl Executor {
    /// An executor for one of the built-in [`Backend`]s.
    pub fn new(backend: Backend) -> Self {
        Executor::with_backend(Box::new(backend))
    }

    /// An executor for the deterministic simulator.
    pub fn scheduled() -> Self {
        Executor::new(Backend::Scheduled)
    }

    /// An executor running one OS thread per process.
    pub fn threaded(config: ThreadedConfig) -> Self {
        Executor::new(Backend::Threaded(config))
    }

    /// An executor that exhaustively explores every interleaving.
    pub fn exploring(config: ExploreConfig) -> Self {
        Executor::new(Backend::Explore(config))
    }

    /// An executor that exhaustively explores every interleaving on a
    /// work-stealing worker pool, with byte-identical results at any
    /// thread count.
    pub fn exploring_parallel(config: ParallelExploreConfig) -> Self {
        Executor::new(Backend::ParallelExplore(config))
    }

    /// An executor running the batched, sharded agreement service under an
    /// open-loop load generator (see the `sa-serve` crate).
    pub fn serving(options: ServeOptions) -> Self {
        Executor::new(Backend::Serve(options))
    }

    /// An executor running the goal-directed adversary search for
    /// lower-bound witnesses (see the `sa-search` crate), with
    /// byte-identical results at any thread count.
    pub fn searching(config: SearchConfig) -> Self {
        Executor::new(Backend::AdversarySearch(config))
    }

    /// An executor for a custom [`ExecutionBackend`] trait object.
    pub fn with_backend(backend: Box<dyn ExecutionBackend>) -> Self {
        Executor { backend }
    }

    /// The label of this executor's backend.
    pub fn label(&self) -> &'static str {
        self.backend.label()
    }

    /// Executes a plan on this executor's backend.
    pub fn execute(&self, plan: &ExecutionPlan) -> ExecutionReport {
        self.backend.execute(plan)
    }
}

/// Rank-2 dispatch over the algorithm's concrete automaton type: the
/// [`ExecutionPlan::with_automata`] match instantiates `drive` once per
/// algorithm, so every consumer of a built system is written once,
/// generically.
trait AutomataDriver {
    /// What the driver produces.
    type Output;

    /// Consumes the constructed automata.
    fn drive<A>(self, plan: &ExecutionPlan, automata: Vec<A>, workload: &Workload) -> Self::Output
    where
        A: Automaton + Clone + Debug + Hash + Send + Sync,
        A::Value: Clone + Eq + Debug + Hash + Send + Sync;
}

/// The one driver behind every backend: dispatches the constructed system
/// to the simulator, the thread pool or the explorer. This replaces the
/// former separate `RunDriver`/`ExploreDriver` pair, so adding a backend
/// touches exactly this match.
struct BackendDriver<'a> {
    backend: &'a Backend,
}

impl AutomataDriver for BackendDriver<'_> {
    type Output = ExecutionReport;

    fn drive<A>(
        self,
        plan: &ExecutionPlan,
        automata: Vec<A>,
        workload: &Workload,
    ) -> ExecutionReport
    where
        A: Automaton + Clone + Debug + Hash + Send + Sync,
        A::Value: Clone + Eq + Debug + Hash + Send + Sync,
    {
        match self.backend {
            Backend::Scheduled => {
                ExecutionReport::Scheduled(plan.run_scheduled(automata, workload))
            }
            Backend::Threaded(config) => {
                ExecutionReport::Threaded(plan.run_on_threads(automata, workload, *config))
            }
            Backend::Explore(config) => {
                ExecutionReport::Explored(plan.run_exploration(automata, workload, *config))
            }
            Backend::ParallelExplore(config) => ExecutionReport::Explored(
                plan.run_parallel_exploration(automata, workload, *config),
            ),
            Backend::AdversarySearch(config) => {
                ExecutionReport::Searched(Box::new(plan.run_search(automata, *config)))
            }
            // Serve runs are intercepted before automata construction in
            // `<Backend as ExecutionBackend>::execute`.
            Backend::Serve(_) => unreachable!("serve dispatches before automata construction"),
        }
    }
}

/// Replays a [`Witness`](sa_search::Witness) against the initial
/// configuration of `plan` through the shared replay verifier — the path
/// `sweep verify` and the campaign engine use, so hand-built, machine-found
/// and persisted witnesses are all checked identically.
///
/// The plan contributes exactly what the search did: parameters, algorithm
/// and workload. Its adversary, step budget and backend are irrelevant — a
/// witness carries its own schedule.
pub fn verify_witness(
    plan: &ExecutionPlan,
    witness: &sa_search::Witness,
) -> Result<sa_search::Certificate, sa_search::VerifyError> {
    plan.with_automata(VerifyDriver { witness })
}

/// Rank-2 driver behind [`verify_witness`]: rebuilds the plan's initial
/// configuration and hands it to `sa_search::verify`.
struct VerifyDriver<'a> {
    witness: &'a sa_search::Witness,
}

impl AutomataDriver for VerifyDriver<'_> {
    type Output = Result<sa_search::Certificate, sa_search::VerifyError>;

    fn drive<A>(self, _plan: &ExecutionPlan, automata: Vec<A>, _workload: &Workload) -> Self::Output
    where
        A: Automaton + Clone + Debug + Hash + Send + Sync,
        A::Value: Clone + Eq + Debug + Hash + Send + Sync,
    {
        let executor = StepExecutor::new(automata);
        sa_search::verify(&executor, self.witness)
    }
}

/// The original builder surface, kept as a **thin shim** over the unified
/// [`ExecutionPlan`] → [`Executor`] → [`ExecutionReport`] API.
///
/// [`Scenario::run`] is `Executor::scheduled().execute(&plan)` and
/// [`Scenario::explore`] is `Executor::exploring(config).execute(&plan)`,
/// nothing more; new code (and anything that wants the threaded backend)
/// should hold an [`ExecutionPlan`] directly.
#[derive(Debug, Clone)]
pub struct Scenario {
    plan: ExecutionPlan,
}

impl Scenario {
    /// Creates a scenario with the default algorithm (Figure 3 one-shot), a
    /// round-robin adversary, an all-distinct workload and a one-million-step
    /// budget.
    pub fn new(params: Params) -> Self {
        Scenario {
            plan: ExecutionPlan::new(params),
        }
    }

    /// Selects the algorithm to run.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.plan = self.plan.algorithm(algorithm);
        self
    }

    /// Selects the adversary schedule.
    pub fn adversary(mut self, adversary: Adversary) -> Self {
        self.plan = self.plan.adversary(adversary);
        self
    }

    /// Supplies an explicit workload (inputs per process and instance). The
    /// default is [`Workload::all_distinct`].
    pub fn workload(mut self, workload: Workload) -> Self {
        self.plan = self.plan.workload(workload);
        self
    }

    /// Sets the step budget.
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.plan = self.plan.max_steps(max_steps);
        self
    }

    /// The parameters of this scenario.
    pub fn params(&self) -> Params {
        self.plan.params()
    }

    /// The underlying [`ExecutionPlan`].
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// Converts this scenario into its [`ExecutionPlan`].
    pub fn into_plan(self) -> ExecutionPlan {
        self.plan
    }

    /// Runs the scenario on the deterministic simulator and reports
    /// decisions, safety and space usage.
    ///
    /// Shim for `Executor::scheduled().execute(plan).expect_scheduled()`.
    pub fn run(&self) -> ScenarioReport {
        Executor::scheduled().execute(&self.plan).expect_scheduled()
    }

    /// Exhaustively explores **every** interleaving of the scenario's
    /// processes up to the configured depth and state budgets, checking
    /// validity and k-agreement in every reachable configuration.
    ///
    /// The adversary is deliberately ignored: exploration quantifies over
    /// all schedules, which subsumes any single adversary. Feasible only
    /// for tiny cells (a handful of processes, a modest depth bound).
    ///
    /// Shim for `Executor::exploring(config).execute(plan).expect_explored()`.
    pub fn explore(&self, config: ExploreConfig) -> ExploreReport {
        Executor::exploring(config)
            .execute(&self.plan)
            .expect_explored()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::new(6, 2, 3).unwrap()
    }

    #[test]
    fn algorithm_labels_and_bounds() {
        let p = params();
        assert_eq!(Algorithm::OneShot.label(), "figure3-oneshot");
        // min(n + 2m - k, n) = min(7, 6) = 6.
        assert_eq!(Algorithm::OneShot.register_bound(p), 6);
        assert_eq!(
            Algorithm::AnonymousRepeated(2).register_bound(p),
            3 * 3 + 4 + 1
        );
        assert_eq!(Algorithm::WideBaseline.register_bound(p), 6);
        assert_eq!(Algorithm::FullInformation.register_bound(p), 6);
        assert_eq!(Algorithm::Repeated(3).instances(), 3);
        assert_eq!(Algorithm::OneShot.instances(), 1);
    }

    #[test]
    fn catalog_round_trips_through_labels() {
        for algorithm in Algorithm::catalog(3) {
            assert_eq!(
                Algorithm::from_label(algorithm.label(), 3),
                Some(algorithm),
                "label {} does not round-trip",
                algorithm.label()
            );
        }
        assert_eq!(
            Algorithm::from_label("oneshot", 1),
            Some(Algorithm::OneShot)
        );
        assert_eq!(Algorithm::from_label("nonsense", 1), None);
    }

    #[test]
    fn wide_baseline_applicability_matches_its_width_requirement() {
        // n = 8 >= k + 2m = 5: applicable.
        assert!(Algorithm::WideBaseline.applicable(Params::new(8, 1, 3).unwrap()));
        // n = 6 < k + 2m = 7: not applicable.
        assert!(!Algorithm::WideBaseline.applicable(Params::new(6, 2, 3).unwrap()));
        for algorithm in Algorithm::catalog(1) {
            if algorithm != Algorithm::WideBaseline {
                assert!(algorithm.applicable(params()));
            }
        }
    }

    #[test]
    fn adversary_builders_produce_named_schedulers() {
        for adversary in [
            Adversary::RoundRobin,
            Adversary::Random { seed: 1 },
            Adversary::Obstruction {
                contention_steps: 10,
                survivors: 2,
                seed: 1,
            },
            Adversary::Solo { process: 0 },
            Adversary::Bursts {
                burst_len: 8,
                seed: 1,
            },
        ] {
            let scheduler = adversary.build(4);
            assert!(!scheduler.name().is_empty());
            assert!(!adversary.label().is_empty());
        }
        assert_eq!(
            Adversary::Solo { process: 1 }.obligated(4),
            vec![ProcessId(1)]
        );
        assert_eq!(
            Adversary::Obstruction {
                contention_steps: 0,
                survivors: 2,
                seed: 0
            }
            .obligated(4)
            .len(),
            2
        );
        assert!(Adversary::RoundRobin.obligated(4).is_empty());
    }

    #[test]
    fn oneshot_scenario_is_safe_and_terminates_for_survivors() {
        let report = Scenario::new(params())
            .algorithm(Algorithm::OneShot)
            .adversary(Adversary::Obstruction {
                contention_steps: 100,
                survivors: 2,
                seed: 7,
            })
            .run();
        assert!(report.safety.is_safe());
        assert!(report.survivors_decided);
        assert!(report.locations_written <= params().snapshot_components());
    }

    #[test]
    fn repeated_scenario_covers_every_instance_for_survivors() {
        let report = Scenario::new(params())
            .algorithm(Algorithm::Repeated(3))
            .adversary(Adversary::Obstruction {
                contention_steps: 150,
                survivors: 2,
                seed: 3,
            })
            .max_steps(2_000_000)
            .run();
        assert!(report.safety.is_safe());
        assert!(report.survivors_decided);
        assert!(report.decisions.instances().count() >= 3);
    }

    #[test]
    fn anonymous_scenarios_are_safe() {
        for algorithm in [Algorithm::AnonymousOneShot, Algorithm::AnonymousRepeated(2)] {
            let report = Scenario::new(params())
                .algorithm(algorithm)
                .adversary(Adversary::Obstruction {
                    contention_steps: 100,
                    survivors: 1,
                    seed: 11,
                })
                .max_steps(2_000_000)
                .run();
            assert!(report.safety.is_safe(), "{algorithm:?} violated safety");
            assert!(report.survivors_decided, "{algorithm:?} survivor starved");
        }
    }

    #[test]
    fn baselines_run_and_stay_safe() {
        let p = Params::new(8, 1, 3).unwrap();
        for algorithm in [Algorithm::WideBaseline, Algorithm::FullInformation] {
            let report = Scenario::new(p)
                .algorithm(algorithm)
                .adversary(Adversary::Obstruction {
                    contention_steps: 80,
                    survivors: 1,
                    seed: 5,
                })
                .max_steps(2_000_000)
                .run();
            assert!(report.safety.is_safe(), "{algorithm:?} violated safety");
            assert!(report.survivors_decided, "{algorithm:?} survivor starved");
        }
    }

    #[test]
    fn crash_adversary_preserves_safety_and_drops_obligations() {
        let adversary = Adversary::Crash {
            inner: Box::new(Adversary::Obstruction {
                contention_steps: 60,
                survivors: 2,
                seed: 5,
            }),
            crash_after: vec![(1, 3), (4, 0)],
        };
        // Survivor p1 crashes: only p0 stays obligated.
        assert_eq!(adversary.obligated(6), vec![ProcessId(0)]);
        assert_eq!(adversary.label(), "crash");
        let report = Scenario::new(params())
            .algorithm(Algorithm::OneShot)
            .adversary(adversary)
            .run();
        assert!(report.safety.is_safe());
        assert!(report.survivors_decided, "the non-crashed survivor starved");
    }

    #[test]
    fn crashed_processes_stop_stepping() {
        let adversary = Adversary::Crash {
            inner: Box::new(Adversary::RoundRobin),
            crash_after: vec![(0, 0), (2, 2)],
        };
        let mut executor = StepExecutor::new(
            (0..4)
                .map(|p| OneShotSetAgreement::new(params4(), ProcessId(p), p as u64))
                .collect::<Vec<_>>(),
        );
        let mut scheduler = adversary.build(4);
        let report = executor.run(&mut *scheduler, RunConfig::with_max_steps(100_000));
        assert_eq!(report.steps_per_process[0], 0);
        assert!(report.steps_per_process[2] <= 2);
        assert!(report.halted[1] && report.halted[3]);
    }

    fn params4() -> Params {
        Params::new(4, 1, 2).unwrap()
    }

    #[test]
    fn explore_verifies_tiny_oneshot_cell() {
        // (2, 1, 1) one-shot has ~1k reachable states: the explorer must
        // exhaust them (the depth bound has to be generous — executions are
        // only obstruction-free, so single paths can be much longer than
        // the state count suggests; dedup is what closes the cycles).
        let cell = Params::new(2, 1, 1).unwrap();
        let report = Scenario::new(cell)
            .algorithm(Algorithm::OneShot)
            .explore(ExploreConfig {
                max_depth: 100_000,
                max_states: 1_000_000,
                dedup: true,
                ..ExploreConfig::default()
            });
        assert!(
            report.verified(),
            "exploration truncated or found a violation: states={} truncated={} violation={:?}",
            report.states_visited,
            report.truncated,
            report.violation
        );
        assert!(report.safe());
        assert!(report.states_visited > 0 && report.paths > 0);
        assert!(
            report.max_locations_written <= Algorithm::OneShot.component_bound(cell),
            "some interleaving wrote {} locations",
            report.max_locations_written
        );
    }

    #[test]
    fn explore_reports_truncation_at_tiny_budgets() {
        let report = Scenario::new(Params::new(3, 1, 2).unwrap())
            .algorithm(Algorithm::OneShot)
            .explore(ExploreConfig {
                max_depth: 2,
                max_states: 10,
                dedup: true,
                ..ExploreConfig::default()
            });
        assert!(report.truncated);
        assert!(!report.verified());
        // No violation within the explored prefix, so it is still "safe".
        assert!(report.safe());
    }

    #[test]
    fn custom_workload_constrains_outputs() {
        let workload = Workload::uniform(6, 1, 99);
        let report = Scenario::new(params())
            .workload(workload)
            .adversary(Adversary::Solo { process: 2 })
            .run();
        assert!(report.safety.is_safe());
        for value in report.decisions.outputs(1) {
            assert_eq!(value, 99);
        }
        assert_eq!(report.distinct_outputs(1), 1);
    }

    #[test]
    fn executor_dispatches_every_backend_on_one_plan() {
        let plan = ExecutionPlan::new(Params::new(2, 1, 1).unwrap())
            .algorithm(Algorithm::OneShot)
            .adversary(Adversary::Solo { process: 0 });

        let scheduled = Executor::scheduled().execute(&plan);
        assert_eq!(scheduled.backend_label(), "scheduled");
        assert!(scheduled.safe());
        assert!(scheduled.steps() > 0);
        assert!(scheduled.as_scheduled().is_some());
        assert!(scheduled.as_threaded().is_none());

        let threaded = Executor::threaded(ThreadedConfig::with_step_budget(100_000)).execute(&plan);
        assert_eq!(threaded.backend_label(), "threaded");
        assert!(threaded.safe());
        assert!(threaded.locations_written() > 0);

        let explored = Executor::exploring(ExploreConfig {
            max_depth: 100_000,
            max_states: 1_000_000,
            dedup: true,
            ..ExploreConfig::default()
        })
        .execute(&plan);
        assert_eq!(explored.backend_label(), "explore");
        let explored = explored.expect_explored();
        assert!(explored.verified());
        assert!(explored.max_depth_reached > 0);
        assert_eq!(explored.threads, 0);

        let parallel = Executor::exploring_parallel(ParallelExploreConfig {
            threads: 2,
            max_depth: 100_000,
            max_states: 1_000_000,
            ..ParallelExploreConfig::default()
        })
        .execute(&plan);
        assert_eq!(parallel.backend_label(), "parallel-explore");
        let parallel = parallel.expect_explored();
        assert!(parallel.verified());
        assert_eq!(parallel.threads, 2);
        assert_eq!(parallel.states_visited, explored.states_visited);

        // n + 2m − k = 3 on this cell: the search must rediscover it.
        let searched = Executor::searching(SearchConfig {
            goal: SearchGoal::Covering,
            target_registers: 3,
            max_depth: 32,
            max_states: 100_000,
            threads: 2,
            symmetry: sa_runtime::SymmetryMode::ProcessIds,
            reduction: sa_runtime::ReductionMode::Off,
        })
        .execute(&plan);
        assert_eq!(searched.backend_label(), "adversary-search");
        assert!(searched.safe());
        assert_eq!(searched.locations_written(), 3);
        let witness = searched.as_searched().unwrap().witness.clone().unwrap();
        assert!(verify_witness(&plan, &witness).is_ok());
        let searched = searched.expect_searched();
        assert!(searched.target_reached && searched.verified);
        assert_eq!(searched.goal, SearchGoal::Covering);
        assert_eq!(witness.certificate.registers, 3);
    }

    #[test]
    fn adversary_search_is_identical_at_any_thread_count() {
        let plan = ExecutionPlan::new(Params::new(2, 1, 1).unwrap()).algorithm(Algorithm::OneShot);
        for goal in SearchGoal::all() {
            let mut previous: Option<sa_search::SearchReport> = None;
            for threads in [1, 2, 8] {
                let report = Executor::searching(SearchConfig {
                    goal,
                    target_registers: 3,
                    max_depth: 32,
                    max_states: 100_000,
                    threads,
                    symmetry: sa_runtime::SymmetryMode::ProcessIds,
                    reduction: sa_runtime::ReductionMode::SleepSets,
                })
                .execute(&plan)
                .expect_searched();
                assert!(report.target_reached, "{goal:?} threads={threads}");
                assert!(report.verified, "{goal:?} threads={threads}");
                let witness = report.witness.as_ref().expect("target reached");
                assert!(verify_witness(&plan, witness).is_ok());
                if let Some(previous) = &previous {
                    // Same witness, same schedule, same certificate —
                    // byte-identical results at any worker count.
                    assert_eq!(report.witness, previous.witness);
                    assert_eq!(report.states_visited, previous.states_visited);
                    assert_eq!(report.max_depth_reached, previous.max_depth_reached);
                    assert_eq!(report.stop, previous.stop);
                }
                previous = Some(report);
            }
        }
    }

    #[test]
    fn parallel_exploration_matches_serial_at_every_thread_count() {
        let plan = ExecutionPlan::new(Params::new(2, 1, 1).unwrap()).algorithm(Algorithm::OneShot);
        let serial = Executor::exploring(ExploreConfig {
            max_depth: 100_000,
            max_states: 1_000_000,
            dedup: true,
            ..ExploreConfig::default()
        })
        .execute(&plan)
        .expect_explored();
        assert!(serial.verified());
        let mut previous: Option<ExploreReport> = None;
        for threads in [1, 2, 8] {
            let report = Executor::exploring_parallel(ParallelExploreConfig {
                threads,
                max_depth: 100_000,
                max_states: 1_000_000,
                ..ParallelExploreConfig::default()
            })
            .execute(&plan)
            .expect_explored();
            assert!(report.verified(), "threads={threads}");
            assert_eq!(report.states_visited, serial.states_visited);
            assert_eq!(report.paths, serial.paths);
            assert_eq!(report.violation, serial.violation);
            // Safety verdicts and space maxima range over the same state
            // set, so they agree with the serial explorer exactly.
            assert_eq!(report.validity_ok, serial.validity_ok);
            assert_eq!(report.agreement_ok, serial.agreement_ok);
            assert_eq!(report.max_locations_written, serial.max_locations_written);
            assert_eq!(report.max_registers_written, serial.max_registers_written);
            assert_eq!(report.max_components_written, serial.max_components_written);
            // And every parallel field is identical at any worker count.
            if let Some(previous) = &previous {
                assert_eq!(report.frontier_peak, previous.frontier_peak);
                assert_eq!(report.seen_entries, previous.seen_entries);
                assert_eq!(report.approx_bytes, previous.approx_bytes);
                assert_eq!(report.max_depth_reached, previous.max_depth_reached);
            }
            previous = Some(report);
        }
    }

    #[test]
    fn scenario_is_a_shim_over_the_plan_api() {
        let scenario = Scenario::new(params())
            .algorithm(Algorithm::OneShot)
            .adversary(Adversary::Obstruction {
                contention_steps: 100,
                survivors: 2,
                seed: 7,
            });
        let via_shim = scenario.run();
        let via_plan = Executor::scheduled()
            .execute(scenario.plan())
            .expect_scheduled();
        // The scheduled backend is deterministic: the shim and the direct
        // path must agree step-for-step.
        assert_eq!(via_shim.steps, via_plan.steps);
        assert_eq!(via_shim.locations_written, via_plan.locations_written);
        assert_eq!(
            via_shim.decisions.outputs(1).len(),
            via_plan.decisions.outputs(1).len()
        );
        assert_eq!(scenario.params(), scenario.plan().params());
    }

    #[test]
    fn threaded_backend_checks_safety_and_reports_throughput() {
        let plan = ExecutionPlan::new(params()).algorithm(Algorithm::OneShot);
        let config = ThreadedConfig::with_step_budget(200_000).seeded(9);
        let report = Executor::threaded(config).execute(&plan).expect_threaded();
        // Safety counters, never step traces: the hardware linearizes.
        assert!(report.safety.is_safe());
        assert!(report.steps > 0);
        assert_eq!(report.steps_per_process.len(), 6);
        assert_eq!(report.config.seed, 9);
        assert!(report.wall > Duration::ZERO);
        assert!(report.steps_per_sec() > 0.0);
        assert!(report.locations_written <= Algorithm::OneShot.component_bound(params()));
    }

    #[test]
    fn custom_backends_plug_in_as_trait_objects() {
        /// A backend that delegates to the simulator but tags its label —
        /// the extension point future multi-backend scaling uses.
        #[derive(Debug)]
        struct Recorder;
        impl ExecutionBackend for Recorder {
            fn label(&self) -> &'static str {
                "recorder"
            }
            fn execute(&self, plan: &ExecutionPlan) -> ExecutionReport {
                Backend::Scheduled.execute(plan)
            }
        }
        let executor = Executor::with_backend(Box::new(Recorder));
        assert_eq!(executor.label(), "recorder");
        let plan = ExecutionPlan::new(params()).adversary(Adversary::Solo { process: 1 });
        assert!(executor.execute(&plan).safe());
    }

    #[test]
    fn plan_execute_shorthand_matches_explicit_executor() {
        let plan = ExecutionPlan::new(params()).adversary(Adversary::Solo { process: 0 });
        let a = plan.execute(Backend::Scheduled).expect_scheduled();
        let b = Executor::new(Backend::Scheduled)
            .execute(&plan)
            .expect_scheduled();
        assert_eq!(a.steps, b.steps);
        assert_eq!(plan.algorithm_selected(), Algorithm::OneShot);
        assert_eq!(plan.adversary_selected().label(), "solo");
    }
}
