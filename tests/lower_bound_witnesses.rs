//! Integration tests for the lower-bound machinery: the covering and cloning
//! attacks defeat under-provisioned variants, never defeat the paper's
//! widths, and the Figure 1 formulas stay mutually consistent across sweeps.

use set_agreement::lowerbound::bounds::{self, Figure1, Naming, Setting};
use set_agreement::lowerbound::cloning::{clone_attack, clones_behave_identically};
use set_agreement::lowerbound::covering::{
    attack_one_shot, attack_repeated, minimal_resilient_width,
};
use set_agreement::model::{ParamSweep, Params};

#[test]
fn covering_attack_defeats_every_severely_deficient_width() {
    // With a single component no information survives; the attack must always
    // produce more than k distinct outputs.
    for (n, m, k) in [(3, 1, 1), (4, 1, 2), (5, 2, 3), (6, 2, 4)] {
        let params = Params::new(n, m, k).unwrap();
        let outcome = attack_one_shot(params, 1, 500_000);
        assert!(outcome.completed);
        assert!(
            outcome.violates_agreement(),
            "no violation at width 1 for n={n} m={m} k={k}"
        );
    }
}

#[test]
fn covering_attack_never_defeats_the_paper_width() {
    for (n, m, k) in [(3, 1, 1), (4, 1, 2), (5, 2, 3), (6, 2, 4), (7, 3, 4)] {
        let params = Params::new(n, m, k).unwrap();
        let one_shot = attack_one_shot(params, params.snapshot_components(), 1_000_000);
        assert!(one_shot.completed);
        assert!(!one_shot.violates_agreement(), "{one_shot}");
        let repeated = attack_repeated(params, params.snapshot_components(), 2, 2_000_000);
        assert!(repeated.completed);
        assert!(!repeated.violates_agreement(), "{repeated}");
    }
}

#[test]
fn resilient_width_grows_with_n_for_consensus() {
    // For repeated consensus the paper proves n registers are necessary and
    // sufficient; the empirical resilient width of the one-shot attack must
    // stay within [2, n + 1] and never shrink as n grows.
    let mut last = 0;
    for n in 3..7 {
        let params = Params::new(n, 1, 1).unwrap();
        let width = minimal_resilient_width(params, 500_000);
        assert!(width >= 2, "width {width} too small for n={n}");
        assert!(width <= params.snapshot_components());
        assert!(width >= last, "resilient width shrank as n grew");
        last = width;
    }
}

#[test]
fn cloning_attack_defeats_deficient_anonymous_variants() {
    for (n, m, k) in [(4, 1, 1), (5, 1, 2), (6, 2, 3)] {
        let params = Params::new(n, m, k).unwrap();
        let outcome = clone_attack(params, 1, 500_000);
        assert!(outcome.completed);
        assert!(
            outcome.violates_agreement(),
            "no violation at width 1 for n={n} m={m} k={k}"
        );
        let safe = clone_attack(params, params.anonymous_snapshot_components(), 1_000_000);
        assert!(safe.completed);
        assert!(!safe.violates_agreement(), "{safe}");
    }
}

#[test]
fn clones_are_indistinguishable_for_a_parameter_sweep() {
    for (n, m, k) in [(3, 1, 1), (4, 1, 2), (5, 2, 3), (6, 3, 4)] {
        let params = Params::new(n, m, k).unwrap();
        assert!(
            clones_behave_identically(params, 60_000),
            "clone diverged for n={n} m={m} k={k}"
        );
    }
}

#[test]
fn figure1_is_consistent_for_every_triple_up_to_16() {
    for params in ParamSweep::up_to(16) {
        let table = Figure1::for_params(params);
        assert_eq!(
            table.consistency_violation(),
            None,
            "inconsistent table for {params:?}"
        );
    }
}

#[test]
fn figure1_gap_is_at_most_m_for_repeated_nonanonymous() {
    // Upper bound n + 2m − k (or n) minus lower bound n + m − k is at most m.
    for params in ParamSweep::up_to(16) {
        let table = Figure1::for_params(params);
        let cell = table.cell(Setting::Repeated, Naming::NonAnonymous);
        assert!(
            cell.gap() <= params.m(),
            "gap {} exceeds m = {} for {params:?}",
            cell.gap(),
            params.m()
        );
    }
}

#[test]
fn anonymous_lower_bound_is_monotone_in_n_and_m() {
    for k in 1..5usize {
        let mut last = 0.0f64;
        for n in (k + 1)..30 {
            let params = Params::new(n, 1.min(k), k).unwrap();
            let raw = bounds::lower_bound(params, Setting::OneShot, Naming::Anonymous).raw;
            assert!(raw >= last - 1e-12, "bound decreased in n for k={k}");
            last = raw;
        }
    }
    // Increasing m (with n, k fixed) never decreases the bound.
    let low = bounds::lower_bound(
        Params::new(20, 1, 4).unwrap(),
        Setting::OneShot,
        Naming::Anonymous,
    )
    .raw;
    let high = bounds::lower_bound(
        Params::new(20, 3, 4).unwrap(),
        Setting::OneShot,
        Naming::Anonymous,
    )
    .raw;
    assert!(high >= low);
}
