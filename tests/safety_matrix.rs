//! Integration tests: safety (validity + k-agreement) must hold for every
//! algorithm under every adversary, including schedules under which
//! termination is not guaranteed.

use set_agreement::model::Params;
use set_agreement::{Adversary, Algorithm, Scenario};

fn algorithms_for(params: Params) -> Vec<Algorithm> {
    let mut algorithms = vec![
        Algorithm::OneShot,
        Algorithm::Repeated(2),
        Algorithm::AnonymousOneShot,
        Algorithm::AnonymousRepeated(2),
        Algorithm::FullInformation,
    ];
    if params.m() == 1 && 2 * (params.n() - params.k()) >= params.snapshot_components() {
        algorithms.push(Algorithm::WideBaseline);
    }
    algorithms
}

fn adversaries() -> Vec<Adversary> {
    vec![
        Adversary::RoundRobin,
        Adversary::Random { seed: 3 },
        Adversary::Random { seed: 99 },
        Adversary::Bursts {
            burst_len: 7,
            seed: 5,
        },
        Adversary::Solo { process: 1 },
        Adversary::Obstruction {
            contention_steps: 150,
            survivors: 1,
            seed: 11,
        },
    ]
}

#[test]
fn safety_holds_for_every_algorithm_and_adversary() {
    for (n, m, k) in [(4, 1, 2), (5, 2, 3), (6, 1, 3), (6, 3, 4)] {
        let params = Params::new(n, m, k).unwrap();
        for algorithm in algorithms_for(params) {
            for adversary in adversaries() {
                let report = Scenario::new(params)
                    .algorithm(algorithm)
                    .adversary(adversary.clone())
                    .max_steps(60_000)
                    .run();
                assert!(
                    report.safety.is_safe(),
                    "{algorithm:?} under {adversary:?} for n={n} m={m} k={k}: {}",
                    report.safety
                );
            }
        }
    }
}

#[test]
fn uniform_inputs_always_decide_the_common_value() {
    use set_agreement::runtime::Workload;
    for (n, m, k) in [(4, 1, 2), (6, 2, 3)] {
        let params = Params::new(n, m, k).unwrap();
        for algorithm in [
            Algorithm::OneShot,
            Algorithm::AnonymousOneShot,
            Algorithm::FullInformation,
        ] {
            let report = Scenario::new(params)
                .algorithm(algorithm)
                .workload(Workload::uniform(n, 1, 4242))
                .adversary(Adversary::Obstruction {
                    contention_steps: 200,
                    survivors: m,
                    seed: 9,
                })
                .max_steps(2_000_000)
                .run();
            assert!(report.safety.is_safe());
            for value in report.decisions.outputs(1) {
                assert_eq!(value, 4242, "{algorithm:?} decided a non-proposed value");
            }
        }
    }
}

#[test]
fn decided_values_are_always_inputs_of_the_same_instance() {
    // Validity per instance: run the repeated algorithm with disjoint value
    // ranges per instance and check no cross-instance leakage.
    use set_agreement::runtime::Workload;
    let params = Params::new(5, 2, 3).unwrap();
    let instances = 3usize;
    let workload = Workload::from_matrix(
        (0..5)
            .map(|p| {
                (1..=instances as u64)
                    .map(|t| 10_000 * t + p as u64)
                    .collect()
            })
            .collect(),
    );
    let report = Scenario::new(params)
        .algorithm(Algorithm::Repeated(instances))
        .workload(workload)
        .adversary(Adversary::Obstruction {
            contention_steps: 300,
            survivors: 2,
            seed: 21,
        })
        .max_steps(5_000_000)
        .run();
    assert!(report.safety.is_safe());
    for instance in report.decisions.instances() {
        for value in report.decisions.outputs(instance) {
            assert_eq!(
                value / 10_000,
                instance,
                "instance {instance} decided value {value} from another instance"
            );
        }
    }
}

#[test]
fn agreement_holds_even_when_k_equals_m() {
    // The maximal-obstruction regime m = k: up to k survivors, each may
    // output a different value, but never more than k distinct values.
    let params = Params::new(6, 3, 3).unwrap();
    for survivors in 1..=3 {
        let report = Scenario::new(params)
            .algorithm(Algorithm::OneShot)
            .adversary(Adversary::Obstruction {
                contention_steps: 200,
                survivors,
                seed: survivors as u64,
            })
            .max_steps(2_000_000)
            .run();
        assert!(report.safety.is_safe());
        assert!(report.survivors_decided);
        assert!(report.distinct_outputs(1) <= 3);
    }
}

#[test]
fn locations_written_never_exceed_declared_components() {
    for (n, m, k) in [(4, 1, 2), (6, 2, 3), (8, 2, 4)] {
        let params = Params::new(n, m, k).unwrap();
        for algorithm in algorithms_for(params) {
            let report = Scenario::new(params)
                .algorithm(algorithm)
                .adversary(Adversary::Random { seed: 17 })
                .max_steps(40_000)
                .run();
            assert!(
                report.locations_written <= algorithm.component_bound(params),
                "{algorithm:?} wrote {} locations but declares {} for n={n} m={m} k={k}",
                report.locations_written,
                algorithm.component_bound(params)
            );
        }
    }
}
