//! Exhaustive (bounded) model checking of the paper's algorithms on tiny
//! configurations: k-agreement is checked in **every** interleaving up to a
//! depth bound, not just on sampled schedules.

use set_agreement::algorithms::{OneShotSetAgreement, RepeatedSetAgreement};
use set_agreement::model::{Params, ProcessId};
use set_agreement::runtime::{agreement_predicate, explore, Executor, ExploreConfig};

#[test]
fn one_shot_consensus_is_safe_in_every_interleaving() {
    // 2 processes, m = k = 1, paper width 3: every interleaving up to depth 30
    // keeps agreement.
    let params = Params::new(2, 1, 1).unwrap();
    let automata: Vec<_> = (0..2)
        .map(|p| OneShotSetAgreement::new(params, ProcessId(p), 10 + p as u64))
        .collect();
    let exec = Executor::new(automata);
    let result = explore(&exec, ExploreConfig::with_depth(30), agreement_predicate(1));
    assert!(
        result.violation.is_none(),
        "violation found: {:?}",
        result.violation
    );
    assert!(result.states_visited > 100, "exploration was trivial");
}

#[test]
fn one_shot_three_process_set_agreement_is_safe_in_every_interleaving() {
    // 3 processes, 2-set agreement, m = 1: width 3. Depth-bounded exhaustive
    // check of 2-agreement.
    let params = Params::new(3, 1, 2).unwrap();
    let automata: Vec<_> = (0..3)
        .map(|p| OneShotSetAgreement::new(params, ProcessId(p), 10 + p as u64))
        .collect();
    let exec = Executor::new(automata);
    let result = explore(&exec, ExploreConfig::with_depth(22), agreement_predicate(2));
    assert!(
        result.violation.is_none(),
        "violation found: {:?}",
        result.violation
    );
}

#[test]
fn repeated_consensus_is_safe_in_every_interleaving() {
    let params = Params::new(2, 1, 1).unwrap();
    let automata: Vec<_> = (0..2)
        .map(|p| {
            RepeatedSetAgreement::new(params, ProcessId(p), vec![10 + p as u64, 20 + p as u64])
                .unwrap()
        })
        .collect();
    let exec = Executor::new(automata);
    let result = explore(&exec, ExploreConfig::with_depth(26), agreement_predicate(1));
    assert!(
        result.violation.is_none(),
        "violation found: {:?}",
        result.violation
    );
}

#[test]
fn under_provisioned_variant_has_a_reachable_violation() {
    // The same exhaustive search *does* find a violation once the snapshot is
    // stripped below the paper's width — the executable content of the lower
    // bound for this algorithm family.
    let params = Params::new(2, 1, 1).unwrap();
    let automata: Vec<_> = (0..2)
        .map(|p| OneShotSetAgreement::deficient(params, ProcessId(p), 10 + p as u64, 1).unwrap())
        .collect();
    let exec = Executor::new(automata);
    let result = explore(&exec, ExploreConfig::with_depth(40), agreement_predicate(1));
    let violation = result.violation.expect("a violation must be reachable");
    assert!(!violation.schedule.is_empty());
    assert!(violation.description.contains("distinct outputs"));
}

#[test]
fn exploration_reports_are_reproducible() {
    let params = Params::new(2, 1, 1).unwrap();
    let build = || {
        let automata: Vec<_> = (0..2)
            .map(|p| OneShotSetAgreement::new(params, ProcessId(p), 10 + p as u64))
            .collect();
        Executor::new(automata)
    };
    let a = explore(
        &build(),
        ExploreConfig::with_depth(20),
        agreement_predicate(1),
    );
    let b = explore(
        &build(),
        ExploreConfig::with_depth(20),
        agreement_predicate(1),
    );
    assert_eq!(a.states_visited, b.states_visited);
    assert_eq!(a.paths, b.paths);
    assert_eq!(a.violation, b.violation);
}
