//! Failure injection: processes crash (stop taking steps forever) at
//! arbitrary points, including in the middle of an update. Crashes are the
//! motivating fault model for obstruction-freedom — a crashed process is just
//! a process that never takes another step — so safety must be unaffected and
//! the survivors must still terminate once at most `m` of them remain active.

use std::collections::BTreeMap;

use set_agreement::algorithms::{AnonymousSetAgreement, OneShotSetAgreement, RepeatedSetAgreement};
use set_agreement::model::{Params, ProcessId};
use set_agreement::runtime::{
    check_k_agreement, check_validity, CrashScheduler, Executor, InputLog, RandomScheduler,
    RoundRobin, RunConfig,
};

fn oneshot_automata(params: Params) -> Vec<OneShotSetAgreement> {
    (0..params.n())
        .map(|p| OneShotSetAgreement::new(params, ProcessId(p), 100 + p as u64))
        .collect()
}

fn oneshot_inputs(params: Params) -> InputLog {
    let mut log = InputLog::new();
    for p in 0..params.n() {
        log.record(1, 100 + p as u64);
    }
    log
}

#[test]
fn all_but_one_process_crashing_leaves_a_decider() {
    // Everybody except p0 crashes early; p0 is then effectively running solo
    // and 1-obstruction-freedom (m >= 1) forces it to decide.
    for (n, m, k) in [(4, 1, 2), (5, 2, 3), (6, 2, 2)] {
        let params = Params::new(n, m, k).unwrap();
        let mut crash_after: BTreeMap<ProcessId, u64> = BTreeMap::new();
        for p in 1..n {
            crash_after.insert(ProcessId(p), 3 * p as u64);
        }
        let mut exec = Executor::new(oneshot_automata(params));
        let mut sched = CrashScheduler::new(RoundRobin::new(), crash_after);
        let report = exec.run(&mut sched, RunConfig::with_max_steps(500_000));
        assert!(
            report.halted[0],
            "survivor did not decide after crashes for n={n} m={m} k={k}"
        );
        check_k_agreement(k, &report.decisions).unwrap();
        check_validity(&oneshot_inputs(params), &report.decisions).unwrap();
        assert_eq!(sched.crashed().len(), n - 1);
    }
}

#[test]
fn staggered_crashes_preserve_safety_under_random_scheduling() {
    for seed in 0..8u64 {
        let params = Params::new(6, 2, 3).unwrap();
        // Crash half the processes at seed-dependent times (possibly mid
        // update/scan sequence).
        let crash_after: BTreeMap<ProcessId, u64> = (0..3)
            .map(|p| (ProcessId(p), 5 + seed * 7 + p as u64 * 11))
            .collect();
        let mut exec = Executor::new(oneshot_automata(params));
        let mut sched = CrashScheduler::new(RandomScheduler::new(seed), crash_after);
        let report = exec.run(&mut sched, RunConfig::with_max_steps(300_000));
        check_k_agreement(3, &report.decisions).unwrap();
        check_validity(&oneshot_inputs(params), &report.decisions).unwrap();
        // The three crash-free processes exceed m = 2, so termination is not
        // guaranteed — but whoever decided must have decided consistently.
        assert!(report.decisions.distinct_outputs(1) <= 3);
    }
}

#[test]
fn repeated_agreement_survives_crashes_between_instances() {
    let params = Params::new(5, 1, 2).unwrap();
    let automata: Vec<_> = (0..5)
        .map(|p| {
            RepeatedSetAgreement::new(
                params,
                ProcessId(p),
                vec![1000 + p as u64, 2000 + p as u64, 3000 + p as u64],
            )
            .unwrap()
        })
        .collect();
    // p1..p4 crash at increasing times; p0 never crashes and must finish all
    // three instances.
    let crash_after: BTreeMap<ProcessId, u64> =
        (1..5).map(|p| (ProcessId(p), 20 * p as u64)).collect();
    let mut exec = Executor::new(automata);
    let mut sched = CrashScheduler::new(RoundRobin::new(), crash_after);
    let report = exec.run(&mut sched, RunConfig::with_max_steps(1_000_000));
    assert!(report.halted[0], "crash-free process did not finish");
    let mut inputs = InputLog::new();
    for t in 1..=3u64 {
        for p in 0..5 {
            inputs.record(t, 1000 * t + p as u64);
        }
    }
    check_k_agreement(2, &report.decisions).unwrap();
    check_validity(&inputs, &report.decisions).unwrap();
    for t in 1..=3u64 {
        assert!(
            report.decisions.decision_of(ProcessId(0), t).is_some(),
            "p0 has no decision for instance {t}"
        );
    }
}

#[test]
fn anonymous_algorithm_survives_crashes() {
    let params = Params::new(5, 2, 3).unwrap();
    let automata: Vec<_> = (0..5)
        .map(|p| AnonymousSetAgreement::one_shot(params, 100 + p as u64))
        .collect();
    // Crash three processes, leaving two (= m) running forever.
    let crash_after: BTreeMap<ProcessId, u64> =
        (2..5).map(|p| (ProcessId(p), 10 + p as u64)).collect();
    let mut exec = Executor::new(automata);
    let mut sched = CrashScheduler::new(RoundRobin::new(), crash_after);
    let report = exec.run(&mut sched, RunConfig::with_max_steps(1_000_000));
    assert!(
        report.halted[0] && report.halted[1],
        "survivors did not decide"
    );
    check_k_agreement(3, &report.decisions).unwrap();
    check_validity(&oneshot_inputs(params), &report.decisions).unwrap();
}

#[test]
fn crashing_a_poised_writer_cannot_break_agreement() {
    // A process that crashes while poised to write is exactly the "covered
    // location that never gets released" situation; agreement must survive
    // any such crash point. Try crashing p1 at every early step count.
    let params = Params::new(4, 1, 2).unwrap();
    for crash_at in 0..30u64 {
        let mut exec = Executor::new(oneshot_automata(params));
        let crash_after: BTreeMap<ProcessId, u64> = [(ProcessId(1), crash_at)].into();
        let mut sched = CrashScheduler::new(RoundRobin::new(), crash_after);
        // A bounded burst of contention around the crash point; termination is
        // not guaranteed here (three crash-free processes exceed m = 1) but
        // safety must hold.
        let report = exec.run(&mut sched, RunConfig::with_max_steps(2_000));
        check_k_agreement(2, &report.decisions).unwrap();
        check_validity(&oneshot_inputs(params), &report.decisions).unwrap();

        // Now let p0 run alone: 1-obstruction-freedom guarantees it decides
        // no matter where p1 stopped (even poised over a pending write).
        use set_agreement::runtime::SoloScheduler;
        let report = exec.run(
            &mut SoloScheduler::new(ProcessId(0)),
            RunConfig::with_max_steps(200_000),
        );
        assert!(
            report.halted[0],
            "p0 could not decide solo after p1 crashed at step {crash_at}"
        );
        check_k_agreement(2, &report.decisions).unwrap();
    }
}
