//! Soundness battery for the op-footprint interference analysis and the
//! sleep-set reduction it feeds.
//!
//! Three layers, mirroring the three places the analysis is trusted:
//!
//! 1. **Statically-independent pairs commute** on arbitrary [`SimMemory`]
//!    states: both orders yield identical memory contents *and* identical
//!    per-op responses (proptest over random contents and op pairs).
//! 2. **Dependent-pair witnesses** for each conflict rule of the static
//!    relation: a concrete state where the two orders genuinely diverge,
//!    proving the rule is not vacuous conservatism — plus the matching
//!    invisible-write cases showing exactly when the state-conditional
//!    refinement is allowed to overrule it.
//! 3. **Reduced-vs-full verdict equivalence** over every cell of
//!    `campaigns/exhaustive.spec`, for `ReductionMode::SleepSets` crossed
//!    with `SymmetryMode` on/off: the same verdicts, the same visited state
//!    counts, and (with reduction on) a non-zero pruning count.
//! 4. **Persistent-set soundness**: the per-state persistent sets the
//!    selective search expands are dependency-closed on random reachable
//!    configurations (proptest over random automata and schedule prefixes),
//!    and `ReductionMode::PersistentSets` reproduces the full exploration's
//!    verdicts — and violation witnesses, trivially `None == None` on these
//!    verified cells — over every `exhaustive.spec` cell, crossed with
//!    `SymmetryMode` on/off and the serial/parallel explorer backends.
//!    Unlike sleep sets, persistent sets cut *states*, so `explored_states`
//!    is pinned as `reduced ≤ full`, not as equality.

use proptest::prelude::*;
use sa_sweep::{run_campaign_collect, CampaignSpec, EngineConfig, SweepRecord};
use set_agreement::memory::SimMemory;
use set_agreement::model::{independent, Automaton, MemoryLayout, Op, ProcessId};
use set_agreement::runtime::toy::{RacyConsensus, ToyWriter};
use set_agreement::runtime::{mask_of, persistent_set, Executor, ReductionMode, SymmetryMode};

const REGISTERS: usize = 2;
const WIDTH: usize = 3;

fn layout() -> MemoryLayout {
    MemoryLayout::new(REGISTERS, vec![WIDTH])
}

/// An arbitrary in-layout operation over a small value universe — small so
/// that equal-value collisions (the invisible-write cases) occur often.
fn op_strategy() -> impl Strategy<Value = Op<u64>> {
    prop_oneof![
        Just(Op::Nop),
        (0usize..REGISTERS).prop_map(|register| Op::Read { register }),
        (0usize..REGISTERS, 0u64..3).prop_map(|(register, value)| Op::Write { register, value }),
        (0usize..WIDTH, 0u64..3).prop_map(|(component, value)| Op::Update {
            snapshot: 0,
            component,
            value,
        }),
        Just(Op::Scan { snapshot: 0 }),
    ]
}

/// An arbitrary reachable memory state: a fresh layout mutated by a short
/// random sequence of in-layout writes and updates.
fn memory_strategy() -> impl Strategy<Value = SimMemory<u64>> {
    proptest::collection::vec(op_strategy(), 0..12).prop_map(|ops| {
        let mut memory: SimMemory<u64> = SimMemory::for_layout(&layout());
        for op in ops {
            memory.apply(ProcessId(0), op).expect("in-layout op");
        }
        memory
    })
}

/// Applies `first` then `second`, returning the responses and the resulting
/// contents fingerprint.
fn run_order(memory: &SimMemory<u64>, first: &Op<u64>, second: &Op<u64>) -> (u64, u64, u64) {
    let mut m = memory.clone();
    let r1 = m.apply(ProcessId(0), first.clone()).expect("in-layout op");
    let r2 = m.apply(ProcessId(1), second.clone()).expect("in-layout op");
    // Responses are hashed so the tuple stays `Eq`-comparable without
    // threading `Response<u64>` through the assertions.
    use std::hash::{Hash, Hasher};
    let digest = |r: &set_agreement::model::Response<u64>| {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        r.hash(&mut h);
        h.finish()
    };
    (digest(&r1), digest(&r2), m.content_fingerprint())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Layer 1: the static relation is sound on every state — independent
    /// pairs commute wherever they are applied.
    #[test]
    fn statically_independent_pairs_commute(
        memory in memory_strategy(),
        a in op_strategy(),
        b in op_strategy(),
    ) {
        // (The proptest shim has no prop_assume; the macro inlines the body
        // in its case loop, so `continue` skips non-matching cases.)
        if !independent(&a, &b) {
            continue;
        }
        let (ra_ab, rb_ab, fp_ab) = run_order(&memory, &a, &b);
        let (rb_ba, ra_ba, fp_ba) = run_order(&memory, &b, &a);
        prop_assert_eq!(fp_ab, fp_ba, "contents diverged for {:?} / {:?}", a, b);
        prop_assert_eq!(ra_ab, ra_ba, "first op's response depends on order");
        prop_assert_eq!(rb_ab, rb_ba, "second op's response depends on order");
    }

    /// Layer 1b: the state-conditional invisible-write refinement is sound
    /// *on the state that judged it* — the only place the explorers ever
    /// consult it.
    #[test]
    fn invisibly_independent_pairs_commute_on_the_judging_state(
        memory in memory_strategy(),
        a in op_strategy(),
        b in op_strategy(),
    ) {
        if !memory.invisibly_independent(&a, &b) {
            continue;
        }
        let (ra_ab, rb_ab, fp_ab) = run_order(&memory, &a, &b);
        let (rb_ba, ra_ba, fp_ba) = run_order(&memory, &b, &a);
        prop_assert_eq!(fp_ab, fp_ba, "contents diverged for {:?} / {:?}", a, b);
        prop_assert_eq!(ra_ab, ra_ba, "first op's response depends on order");
        prop_assert_eq!(rb_ab, rb_ba, "second op's response depends on order");
    }

    /// The refinement is symmetric — a requirement for deterministic
    /// sleep-mask propagation (the pair is judged from either side
    /// depending on sibling order).
    #[test]
    fn invisible_independence_is_symmetric(
        memory in memory_strategy(),
        a in op_strategy(),
        b in op_strategy(),
    ) {
        prop_assert_eq!(
            memory.invisibly_independent(&a, &b),
            memory.invisibly_independent(&b, &a)
        );
    }
}

/// Layer 2: one divergence witness per conflict rule of the static
/// relation, plus the invisible-write boundary of each rule.
#[test]
fn write_write_conflict_witness() {
    let memory: SimMemory<u64> = SimMemory::for_layout(&layout());
    let a = Op::Write {
        register: 0,
        value: 1,
    };
    let b = Op::Write {
        register: 0,
        value: 2,
    };
    assert!(!independent(&a, &b));
    assert!(!memory.invisibly_independent(&a, &b));
    let (.., fp_ab) = run_order(&memory, &a, &b);
    let (.., fp_ba) = run_order(&memory, &b, &a);
    assert_ne!(fp_ab, fp_ba, "last write must win differently per order");
    // Equal payloads are the refinement's territory: still statically
    // dependent, but commuting in every state.
    let same = Op::Write {
        register: 0,
        value: 1,
    };
    assert!(!independent(&a, &same));
    assert!(memory.invisibly_independent(&a, &same));
}

#[test]
fn write_read_conflict_witness() {
    let memory: SimMemory<u64> = SimMemory::for_layout(&layout());
    let write = Op::Write {
        register: 1,
        value: 7,
    };
    let read = Op::Read { register: 1 };
    assert!(!independent(&write, &read));
    assert!(!memory.invisibly_independent(&write, &read));
    let (_, r_after, _) = run_order(&memory, &write, &read);
    let (r_before, _, _) = run_order(&memory, &read, &write);
    assert_ne!(r_before, r_after, "the read must observe the write");
    // Once the register holds 7, re-writing 7 is invisible to the reader.
    let mut primed = memory.clone();
    primed.apply(ProcessId(0), write.clone()).unwrap();
    assert!(primed.invisibly_independent(&write, &read));
    let (w_ab, r_ab, fp_ab) = run_order(&primed, &write, &read);
    let (r_ba, w_ba, fp_ba) = run_order(&primed, &read, &write);
    assert_eq!((w_ab, r_ab, fp_ab), (w_ba, r_ba, fp_ba));
}

#[test]
fn update_update_conflict_witness() {
    let memory: SimMemory<u64> = SimMemory::for_layout(&layout());
    let a = Op::Update {
        snapshot: 0,
        component: 2,
        value: 4,
    };
    let b = Op::Update {
        snapshot: 0,
        component: 2,
        value: 5,
    };
    assert!(!independent(&a, &b));
    assert!(!memory.invisibly_independent(&a, &b));
    let (.., fp_ab) = run_order(&memory, &a, &b);
    let (.., fp_ba) = run_order(&memory, &b, &a);
    assert_ne!(fp_ab, fp_ba);
}

#[test]
fn update_scan_conflict_witness() {
    let memory: SimMemory<u64> = SimMemory::for_layout(&layout());
    let update = Op::Update {
        snapshot: 0,
        component: 0,
        value: 9,
    };
    let scan: Op<u64> = Op::Scan { snapshot: 0 };
    assert!(!independent(&update, &scan));
    assert!(!memory.invisibly_independent(&update, &scan));
    let (_, scan_after, _) = run_order(&memory, &update, &scan);
    let (scan_before, _, _) = run_order(&memory, &scan, &update);
    assert_ne!(scan_before, scan_after, "the scan must observe the update");
    // With the component already holding 9, the update is invisible.
    let mut primed = memory.clone();
    primed.apply(ProcessId(0), update.clone()).unwrap();
    assert!(primed.invisibly_independent(&update, &scan));
    let (u_ab, s_ab, fp_ab) = run_order(&primed, &update, &scan);
    let (s_ba, u_ba, fp_ba) = run_order(&primed, &scan, &update);
    assert_eq!((u_ab, s_ab, fp_ab), (u_ba, s_ba, fp_ba));
}

/// Loads `campaigns/exhaustive.spec` from the repository root.
fn exhaustive_spec() -> CampaignSpec {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/campaigns/exhaustive.spec");
    let text = std::fs::read_to_string(path).expect("exhaustive.spec is checked in");
    CampaignSpec::parse(&text).expect("exhaustive.spec parses")
}

/// Layer 3 worker: runs the exhaustive campaign with reduction off and on
/// under one symmetry mode and asserts verdict and state-count equality on
/// every cell.
fn assert_reduced_matches_full(symmetry: SymmetryMode) {
    let mut off = exhaustive_spec();
    off.symmetry = symmetry;
    off.reduction = ReductionMode::Off;
    let (full, full_outcome) = run_campaign_collect(&off, EngineConfig::default());

    let mut on = off.clone();
    on.reduction = ReductionMode::SleepSets;
    let (reduced, reduced_outcome) = run_campaign_collect(&on, EngineConfig::default());

    assert_eq!(full_outcome.clean(), reduced_outcome.clean());
    assert_eq!(full.len(), reduced.len(), "cell list must not change");
    let mut total_pruned = 0;
    for (f, r) in full.iter().zip(&reduced) {
        let cell = |rec: &SweepRecord| {
            (
                rec.n,
                rec.m,
                rec.k,
                rec.algorithm.clone(),
                rec.instances,
                rec.scenario,
            )
        };
        assert_eq!(cell(f), cell(r), "records must pair up cell-for-cell");
        // The verdict: same safety outcome, same exhaustiveness, and —
        // because sleep sets prune transitions, never states — the same
        // visited state count.
        assert_eq!(f.validity_ok, r.validity_ok, "{:?}", cell(f));
        assert_eq!(f.agreement_ok, r.agreement_ok, "{:?}", cell(f));
        assert_eq!(f.verified, r.verified, "{:?}", cell(f));
        assert_eq!(f.stop, r.stop, "{:?}", cell(f));
        assert_eq!(f.explored_states, r.explored_states, "{:?}", cell(f));
        assert_eq!(f.reduction, "off");
        assert_eq!(r.reduction, "sleep-set");
        assert!(
            r.expansions > 0,
            "reduced runs must report their expansions"
        );
        total_pruned += r.sleep_pruned;
    }
    assert!(
        total_pruned > 0,
        "sleep sets must prune something across the campaign"
    );
}

#[test]
fn reduced_matches_full_without_symmetry() {
    assert_reduced_matches_full(SymmetryMode::Off);
}

#[test]
fn reduced_matches_full_with_symmetry() {
    assert_reduced_matches_full(SymmetryMode::ProcessIds);
}

/// Layer 4 invariant: the set the selective search expands must be
/// dependency-closed — a persistent member with a poised op statically
/// dependent on some enabled non-member's poised op would let that
/// non-member invalidate the persistence argument.
fn assert_dependency_closed<A>(exec: &Executor<A>)
where
    A: Automaton,
    A::Value: Clone + Eq + std::fmt::Debug,
{
    let runnable = exec.runnable();
    if runnable.is_empty() {
        return;
    }
    let pset = persistent_set(exec, &runnable);
    assert_ne!(
        pset, 0,
        "a nonempty enabled set must yield a nonempty persistent set"
    );
    assert_eq!(
        pset & !mask_of(&runnable),
        0,
        "the persistent set must stay within the enabled set"
    );
    for p in &runnable {
        if pset & mask_of(&[*p]) == 0 {
            continue;
        }
        let p_op = exec.poised(*p);
        for q in &runnable {
            if pset & mask_of(&[*q]) != 0 {
                continue;
            }
            let dependent = match (&p_op, &exec.poised(*q)) {
                (Some(a), Some(b)) => !independent(a, b),
                _ => true,
            };
            assert!(
                !dependent,
                "persistent member {p:?} conflicts with excluded {q:?}: \
                 the set is not dependency-closed"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Layer 4a: persistent sets are dependency-closed on random reachable
    /// writer configurations — overlapping registers make the closure
    /// non-trivial (dependent writers must be pulled in together).
    #[test]
    fn persistent_sets_are_dependency_closed_for_writers(
        specs in proptest::collection::vec((0usize..3, 0u64..4), 2..=4),
        schedule in proptest::collection::vec(0usize..4, 0..8),
    ) {
        let automata: Vec<ToyWriter> = specs
            .into_iter()
            .map(|(register, value)| ToyWriter::new(register, value))
            .collect();
        let mut exec = Executor::new(automata);
        for pick in schedule {
            let runnable = exec.runnable();
            if runnable.is_empty() {
                break;
            }
            exec.step(runnable[pick % runnable.len()]);
        }
        assert_dependency_closed(&exec);
    }

    /// Layer 4b: the same closure invariant on random reachable
    /// read/write-racing consensus configurations, whose poised ops change
    /// shape (write then read) along the execution.
    #[test]
    fn persistent_sets_are_dependency_closed_for_racers(
        values in proptest::collection::vec(0u64..5, 2..=4),
        schedule in proptest::collection::vec(0usize..4, 0..8),
    ) {
        let automata: Vec<RacyConsensus> = values
            .into_iter()
            .enumerate()
            .map(|(id, value)| RacyConsensus::new(ProcessId(id), value))
            .collect();
        let mut exec = Executor::new(automata);
        for pick in schedule {
            let runnable = exec.runnable();
            if runnable.is_empty() {
                break;
            }
            exec.step(runnable[pick % runnable.len()]);
        }
        assert_dependency_closed(&exec);
    }
}

/// Layer 4 worker: runs the exhaustive campaign with reduction off and with
/// persistent sets under one symmetry mode and explorer backend, and asserts
/// verdict equivalence on every cell. `explored_states` is pinned as
/// `reduced ≤ full` — cutting states is the point of the mode.
fn assert_persistent_matches_full(symmetry: SymmetryMode, explore_threads: usize) {
    let mut off = exhaustive_spec();
    off.symmetry = symmetry;
    off.reduction = ReductionMode::Off;
    off.explore_threads = explore_threads;
    let (full, full_outcome) = run_campaign_collect(&off, EngineConfig::default());

    let mut on = off.clone();
    on.reduction = ReductionMode::PersistentSets;
    let (reduced, reduced_outcome) = run_campaign_collect(&on, EngineConfig::default());

    assert_eq!(full_outcome.clean(), reduced_outcome.clean());
    assert_eq!(full.len(), reduced.len(), "cell list must not change");
    let mut total_persistent_expanded = 0;
    for (f, r) in full.iter().zip(&reduced) {
        let cell = |rec: &SweepRecord| {
            (
                rec.n,
                rec.m,
                rec.k,
                rec.algorithm.clone(),
                rec.instances,
                rec.scenario,
            )
        };
        assert_eq!(cell(f), cell(r), "records must pair up cell-for-cell");
        // The verdict: same safety outcome, same exhaustiveness, same stop
        // reason — and on these verified cells the violation witnesses are
        // identical trivially (none on either side).
        assert_eq!(f.validity_ok, r.validity_ok, "{:?}", cell(f));
        assert_eq!(f.agreement_ok, r.agreement_ok, "{:?}", cell(f));
        assert_eq!(f.verified, r.verified, "{:?}", cell(f));
        assert_eq!(f.stop, r.stop, "{:?}", cell(f));
        assert!(
            r.explored_states <= f.explored_states,
            "persistent sets may never visit new states: {} > {} on {:?}",
            r.explored_states,
            f.explored_states,
            cell(f)
        );
        assert_eq!(f.reduction, "off");
        assert_eq!(r.reduction, "persistent-set");
        total_persistent_expanded += r.persistent_expanded;
    }
    if explore_threads == 0 {
        // Serial DPOR draws every expansion from a backtrack set; the
        // parallel explorer only counts gated states, which these tiny
        // cells may never produce.
        assert!(
            total_persistent_expanded > 0,
            "the DPOR search must report its persistent expansions"
        );
    }
}

#[test]
fn persistent_matches_full_serial_without_symmetry() {
    assert_persistent_matches_full(SymmetryMode::Off, 0);
}

#[test]
fn persistent_matches_full_serial_with_symmetry() {
    assert_persistent_matches_full(SymmetryMode::ProcessIds, 0);
}

#[test]
fn persistent_matches_full_parallel_without_symmetry() {
    assert_persistent_matches_full(SymmetryMode::Off, 2);
}

#[test]
fn persistent_matches_full_parallel_with_symmetry() {
    assert_persistent_matches_full(SymmetryMode::ProcessIds, 2);
}
