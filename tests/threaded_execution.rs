//! The threaded backend, driven through the unified execution API and
//! through sweep campaigns — plus the regression tests proving the
//! `ExecutionPlan` → `Executor` → `ExecutionReport` redesign changed no
//! scheduled or explore output.
//!
//! Threaded runs are linearized by the hardware, so these tests assert
//! *safety counters* (validity, k-agreement, space bounds) and never step
//! traces; with a fixed [`ThreadedConfig::seed`] the inputs and thread
//! spawn order are pinned, making each scenario reproducible up to
//! interleaving.

use sa_sweep::{run_campaign, run_campaign_collect, CampaignSpec, EngineConfig};
use set_agreement::model::Params;
use set_agreement::prelude::*;
use std::time::Duration;

fn executor(budget: u64) -> Executor {
    Executor::threaded(ThreadedConfig::with_step_budget(budget))
}

#[test]
fn threaded_one_shot_runs_are_safe() {
    let plan = ExecutionPlan::new(Params::new(6, 2, 3).unwrap()).algorithm(Algorithm::OneShot);
    let report = executor(200_000).execute(&plan).expect_threaded();
    assert!(report.safety.is_safe());
    assert!(report.locations_written > 0);
}

#[test]
fn threaded_staggered_start_lets_the_first_thread_decide() {
    // A generous stagger means thread 0 effectively runs solo and must decide
    // long before thread 1 even starts.
    let plan = ExecutionPlan::new(Params::new(4, 1, 2).unwrap()).algorithm(Algorithm::OneShot);
    let config = ThreadedConfig::with_step_budget(500_000).staggered(Duration::from_millis(40));
    let report = Executor::threaded(config).execute(&plan).expect_threaded();
    assert!(report.halted[0], "staggered first thread did not decide");
    assert!(report.safety.is_safe());
}

#[test]
fn threaded_repeated_runs_are_safe_per_instance() {
    let plan = ExecutionPlan::new(Params::new(4, 2, 2).unwrap()).algorithm(Algorithm::Repeated(2));
    let report = executor(300_000).execute(&plan).expect_threaded();
    assert!(report.safety.is_safe());
    assert!(report.decisions.instances().count() <= 2);
    // Decision arrival order respects instance order per process — the one
    // ordering invariant a hardware-linearized run must still satisfy.
    for p in 0..4 {
        let instances: Vec<u64> = report
            .arrival_order
            .iter()
            .filter(|(pid, _)| pid.index() == p)
            .map(|(_, d)| d.instance)
            .collect();
        let mut sorted = instances.clone();
        sorted.sort_unstable();
        assert_eq!(instances, sorted, "out-of-order decisions for process {p}");
    }
}

#[test]
fn threaded_anonymous_runs_are_safe() {
    let plan =
        ExecutionPlan::new(Params::new(5, 2, 3).unwrap()).algorithm(Algorithm::AnonymousOneShot);
    let report = executor(200_000).execute(&plan).expect_threaded();
    assert!(report.safety.is_safe());
}

#[test]
fn threaded_metrics_respect_the_layout() {
    let params = Params::new(4, 1, 2).unwrap();
    let plan = ExecutionPlan::new(params).algorithm(Algorithm::OneShot);
    let report = executor(100_000).execute(&plan).expect_threaded();
    assert!(
        report.locations_written <= Algorithm::OneShot.component_bound(params),
        "threaded run wrote more locations than the algorithm declares"
    );
    assert!(report.metrics.total_ops() > 0);
    assert!(report.wall > Duration::ZERO);
}

/// A `backend = threaded` smoke campaign end-to-end through the sweep
/// engine: every record must be safe and within its space bound, with
/// wall-clock throughput recorded.
#[test]
fn threaded_smoke_campaign_reports_zero_safety_violations() {
    let spec = CampaignSpec::parse(
        "name = threaded-test\n\
         n = 4,5\n\
         m = 1,2\n\
         k = 2\n\
         algorithms = oneshot:1, anon-oneshot:1\n\
         backend = threaded\n\
         seeds = 2\n\
         workload = distinct\n\
         max-steps = 200000\n\
         campaign-seed = 7\n",
    )
    .unwrap();
    let (records, outcome) = run_campaign_collect(&spec, EngineConfig::default());
    assert!(outcome.clean(), "threaded campaign not clean: {outcome:?}");
    assert_eq!(outcome.safety_violations, 0);
    assert_eq!(outcome.threaded, records.len() as u64);
    assert!(!records.is_empty());
    for record in &records {
        assert_eq!(record.backend, "threaded");
        assert_eq!(record.adversary, "hardware");
        assert!(record.safe());
        assert!(record.bound_ok);
        assert!(record.steps > 0);
    }
}

const GOLDEN_SCHEDULED_SPEC: &str = "\
name = golden-scheduled
n = 4,5
m = 1,2
k = 2
algorithms = oneshot:1, anon-oneshot:1, fullinfo:1
adversaries = obstruction:30, crash:round-robin:1
seeds = 2
workload = distinct
max-steps = 300000
campaign-seed = 42
";

const GOLDEN_EXPLORE_SPEC: &str = "\
name = golden-explore
mode = explore
params = 2/1/1
algorithms = oneshot:1, anon-oneshot:1
workload = distinct
max-steps = 100000
max-states = 1000000
campaign-seed = 42
";

fn campaign_bytes(spec_text: &str, threads: usize) -> Vec<u8> {
    let spec = CampaignSpec::parse(spec_text).expect("golden spec parses");
    let mut bytes = Vec::new();
    run_campaign(
        &spec,
        EngineConfig {
            threads,
            ..EngineConfig::default()
        },
        &mut bytes,
    )
    .expect("in-memory sink cannot fail");
    bytes
}

/// The seed JSONL in `tests/golden/` was generated by the pre-redesign
/// engine (separate `Scenario::run`/`Scenario::explore` driver hooks).
/// Re-running the same campaign through the unified `Executor` path must
/// reproduce it **byte for byte**, at any thread count — the redesign is a
/// pure refactor of the scheduled execution path.
#[test]
fn scheduled_campaigns_are_byte_identical_to_the_pre_redesign_seed() {
    let golden = include_bytes!("golden/scheduled-seed.jsonl");
    assert_eq!(
        campaign_bytes(GOLDEN_SCHEDULED_SPEC, 1),
        golden,
        "single-threaded run diverged from the pre-redesign output"
    );
    assert_eq!(
        campaign_bytes(GOLDEN_SCHEDULED_SPEC, 4),
        golden,
        "parallel run diverged from the pre-redesign output"
    );
}

/// Explore output gained exactly one field in this redesign
/// (`explored_depth`); everything the pre-redesign engine emitted must be
/// unchanged. Parsing the old seed file defaults the new field to 0, so
/// comparing with depth zeroed proves every pre-existing field identical.
#[test]
fn explore_campaigns_match_the_pre_redesign_seed_modulo_the_depth_field() {
    let golden = sa_sweep::parse_jsonl(include_str!("golden/explore-seed.jsonl"))
        .expect("golden explore seed parses");
    let bytes = campaign_bytes(GOLDEN_EXPLORE_SPEC, 2);
    let current = sa_sweep::parse_jsonl(std::str::from_utf8(&bytes).unwrap()).unwrap();
    assert_eq!(current.len(), golden.len());
    for (new, old) in current.iter().zip(&golden) {
        assert!(new.explored_depth > 0, "depth must now be recorded");
        let mut stripped = new.clone();
        stripped.explored_depth = 0;
        assert_eq!(
            &stripped, old,
            "explore output drifted beyond the new field"
        );
    }
}
