//! Runs the same algorithm state machines on real OS threads against the
//! lock-based shared memory, checking that safety is preserved outside the
//! deterministic simulator.

use set_agreement::algorithms::{AnonymousSetAgreement, OneShotSetAgreement, RepeatedSetAgreement};
use set_agreement::model::{Params, ProcessId};
use set_agreement::runtime::{
    check_k_agreement, check_validity, run_threaded, InputLog, ThreadedConfig,
};
use std::time::Duration;

fn input_log(params: Params, instances: u64) -> InputLog {
    let mut log = InputLog::new();
    for t in 1..=instances {
        for p in 0..params.n() {
            log.record(t, t * 1000 + p as u64);
        }
    }
    log
}

#[test]
fn threaded_one_shot_runs_are_safe() {
    let params = Params::new(6, 2, 3).unwrap();
    let automata: Vec<_> = (0..6)
        .map(|p| OneShotSetAgreement::new(params, ProcessId(p), 1000 + p as u64))
        .collect();
    let report = run_threaded(automata, ThreadedConfig::with_step_budget(200_000));
    check_k_agreement(3, &report.decisions).unwrap();
    check_validity(&input_log(params, 1), &report.decisions).unwrap();
}

#[test]
fn threaded_staggered_start_lets_the_first_thread_decide() {
    // A generous stagger means thread 0 effectively runs solo and must decide
    // long before thread 1 even starts.
    let params = Params::new(4, 1, 2).unwrap();
    let automata: Vec<_> = (0..4)
        .map(|p| OneShotSetAgreement::new(params, ProcessId(p), 1000 + p as u64))
        .collect();
    let config = ThreadedConfig::with_step_budget(500_000).staggered(Duration::from_millis(40));
    let report = run_threaded(automata, config);
    assert!(report.halted[0], "staggered first thread did not decide");
    check_k_agreement(2, &report.decisions).unwrap();
}

#[test]
fn threaded_repeated_runs_are_safe_per_instance() {
    let params = Params::new(4, 2, 2).unwrap();
    let automata: Vec<_> = (0..4)
        .map(|p| {
            RepeatedSetAgreement::new(params, ProcessId(p), vec![1000 + p as u64, 2000 + p as u64])
                .unwrap()
        })
        .collect();
    let report = run_threaded(automata, ThreadedConfig::with_step_budget(300_000));
    check_k_agreement(2, &report.decisions).unwrap();
    check_validity(&input_log(params, 2), &report.decisions).unwrap();
    // Decision arrival order respects instance order per process.
    for p in 0..4 {
        let instances: Vec<u64> = report
            .arrival_order
            .iter()
            .filter(|(pid, _)| pid.index() == p)
            .map(|(_, d)| d.instance)
            .collect();
        let mut sorted = instances.clone();
        sorted.sort_unstable();
        assert_eq!(instances, sorted, "out-of-order decisions for process {p}");
    }
}

#[test]
fn threaded_anonymous_runs_are_safe() {
    let params = Params::new(5, 2, 3).unwrap();
    let automata: Vec<_> = (0..5)
        .map(|p| AnonymousSetAgreement::one_shot(params, 1000 + p as u64))
        .collect();
    let report = run_threaded(automata, ThreadedConfig::with_step_budget(200_000));
    check_k_agreement(3, &report.decisions).unwrap();
    check_validity(&input_log(params, 1), &report.decisions).unwrap();
}

#[test]
fn threaded_metrics_respect_the_layout() {
    let params = Params::new(4, 1, 2).unwrap();
    let automata: Vec<_> = (0..4)
        .map(|p| OneShotSetAgreement::new(params, ProcessId(p), 1000 + p as u64))
        .collect();
    let report = run_threaded(automata, ThreadedConfig::with_step_budget(100_000));
    assert!(
        report.metrics.components_written(0) <= params.snapshot_components(),
        "threaded run wrote more components than the snapshot declares"
    );
    assert!(report.metrics.total_ops() > 0);
}
