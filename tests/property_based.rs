//! Property-based tests (proptest): safety of every algorithm under random
//! parameters, workloads and schedules, plus structural invariants of the
//! bound formulas and the core data types.

use proptest::prelude::*;
use set_agreement::algorithms::History;
use set_agreement::lowerbound::bounds::{Figure1, Naming, Setting};
use set_agreement::model::{Decision, DecisionSet, Params, ProcessId};
use set_agreement::runtime::Workload;
use set_agreement::{Adversary, Algorithm, Scenario};

/// A strategy producing valid `(n, m, k)` triples with `n ≤ 8` (kept small so
/// each case runs in milliseconds).
fn params_strategy() -> impl Strategy<Value = Params> {
    (3usize..=8)
        .prop_flat_map(|n| (Just(n), 1usize..n))
        .prop_flat_map(|(n, k)| (Just(n), 1usize..=k, Just(k)))
        .prop_map(|(n, m, k)| Params::new(n, m, k).expect("strategy produces valid triples"))
}

fn adversary_strategy() -> impl Strategy<Value = Adversary> {
    prop_oneof![
        Just(Adversary::RoundRobin),
        any::<u64>().prop_map(|seed| Adversary::Random { seed }),
        (any::<u64>(), 1usize..4, 0u64..400).prop_map(|(seed, survivors, contention_steps)| {
            Adversary::Obstruction {
                contention_steps,
                survivors,
                seed,
            }
        }),
        (1u64..32, any::<u64>())
            .prop_map(|(burst_len, seed)| Adversary::Bursts { burst_len, seed }),
        (0usize..8).prop_map(|process| Adversary::Solo { process }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn one_shot_safety_under_random_schedules(
        params in params_strategy(),
        adversary in adversary_strategy(),
        universe in 1u64..6,
        seed in any::<u64>(),
    ) {
        let workload = Workload::random(params.n(), 1, universe, seed);
        let report = Scenario::new(params)
            .algorithm(Algorithm::OneShot)
            .workload(workload)
            .adversary(adversary)
            .max_steps(20_000)
            .run();
        prop_assert!(report.safety.is_safe(), "{}", report.safety);
    }

    #[test]
    fn repeated_safety_under_random_schedules(
        params in params_strategy(),
        adversary in adversary_strategy(),
        instances in 1usize..4,
        seed in any::<u64>(),
    ) {
        let workload = Workload::random(params.n(), instances, 5, seed);
        let report = Scenario::new(params)
            .algorithm(Algorithm::Repeated(instances))
            .workload(workload)
            .adversary(adversary)
            .max_steps(25_000)
            .run();
        prop_assert!(report.safety.is_safe(), "{}", report.safety);
    }

    #[test]
    fn anonymous_safety_under_random_schedules(
        params in params_strategy(),
        adversary in adversary_strategy(),
        seed in any::<u64>(),
    ) {
        let workload = Workload::random(params.n(), 1, 4, seed);
        let report = Scenario::new(params)
            .algorithm(Algorithm::AnonymousOneShot)
            .workload(workload)
            .adversary(adversary)
            .max_steps(20_000)
            .run();
        prop_assert!(report.safety.is_safe(), "{}", report.safety);
    }

    #[test]
    fn full_information_baseline_safety_under_random_schedules(
        params in params_strategy(),
        adversary in adversary_strategy(),
        seed in any::<u64>(),
    ) {
        let workload = Workload::random(params.n(), 1, 4, seed);
        let report = Scenario::new(params)
            .algorithm(Algorithm::FullInformation)
            .workload(workload)
            .adversary(adversary)
            .max_steps(20_000)
            .run();
        prop_assert!(report.safety.is_safe(), "{}", report.safety);
    }

    #[test]
    fn obstruction_runs_always_terminate_for_m_survivors(
        params in params_strategy(),
        seed in any::<u64>(),
    ) {
        let report = Scenario::new(params)
            .algorithm(Algorithm::OneShot)
            .adversary(Adversary::Obstruction {
                contention_steps: 30 * params.n() as u64,
                survivors: params.m(),
                seed,
            })
            .max_steps(3_000_000)
            .run();
        prop_assert!(report.survivors_decided, "survivors starved for {params:?}");
        prop_assert!(report.safety.is_safe());
    }

    #[test]
    fn figure1_bounds_are_consistent_and_ordered(params in params_strategy()) {
        let table = Figure1::for_params(params);
        prop_assert_eq!(table.consistency_violation(), None);
        // The repeated non-anonymous upper bound never exceeds n, and the
        // lower bound never exceeds the upper bound of any other setting of
        // the same naming.
        let repeated = table.cell(Setting::Repeated, Naming::NonAnonymous);
        prop_assert!(repeated.upper.registers <= params.n());
        prop_assert!(repeated.lower.registers >= 2);
    }

    #[test]
    fn history_append_get_roundtrip(values in proptest::collection::vec(any::<u64>(), 0..24)) {
        let mut history = History::empty();
        for v in &values {
            history = history.appended(*v);
        }
        prop_assert_eq!(history.len(), values.len());
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(history.get(i as u64 + 1), Some(*v));
        }
        prop_assert_eq!(history.get(values.len() as u64 + 1), None);
        prop_assert_eq!(history.as_slice(), &values[..]);
        let rebuilt = History::from_vec(values.clone());
        prop_assert_eq!(history, rebuilt);
    }

    #[test]
    fn decision_set_counts_match_inserted_data(
        decisions in proptest::collection::vec((0usize..6, 1u64..4, 0u64..5), 0..40)
    ) {
        let mut set = DecisionSet::new();
        for (p, instance, value) in &decisions {
            set.record(ProcessId(*p), Decision::new(*instance, *value));
        }
        // Distinct outputs per instance never exceed the number of distinct
        // values inserted for that instance, and deciders never exceed the
        // number of distinct processes.
        for instance in 1u64..4 {
            let values: std::collections::BTreeSet<u64> = decisions
                .iter()
                .filter(|(_, i, _)| *i == instance)
                .map(|(_, _, v)| *v)
                .collect();
            let procs: std::collections::BTreeSet<usize> = decisions
                .iter()
                .filter(|(_, i, _)| *i == instance)
                .map(|(p, _, _)| *p)
                .collect();
            prop_assert!(set.distinct_outputs(instance) <= values.len());
            prop_assert_eq!(set.deciders(instance), procs.len());
        }
    }

    #[test]
    fn workload_generators_have_declared_shape(
        processes in 1usize..10,
        instances in 1usize..6,
        seed in any::<u64>(),
    ) {
        for workload in [
            Workload::all_distinct(processes, instances),
            Workload::uniform(processes, instances, 7),
            Workload::random(processes, instances, 100, seed),
        ] {
            prop_assert_eq!(workload.processes(), processes);
            prop_assert_eq!(workload.instances(), instances);
            for p in 0..processes {
                prop_assert_eq!(workload.sequence(p).len(), instances);
            }
        }
        // Determinism: the same seed reproduces the same workload.
        prop_assert_eq!(
            Workload::random(processes, instances, 100, seed),
            Workload::random(processes, instances, 100, seed)
        );
    }

    #[test]
    fn scenario_runs_are_deterministic(
        params in params_strategy(),
        seed in any::<u64>(),
    ) {
        let run = || {
            Scenario::new(params)
                .algorithm(Algorithm::OneShot)
                .adversary(Adversary::Random { seed })
                .max_steps(10_000)
                .run()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.decisions, b.decisions);
        prop_assert_eq!(a.locations_written, b.locations_written);
    }
}
