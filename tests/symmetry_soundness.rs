//! The orbit-soundness battery pinning symmetry-reduced exploration.
//!
//! A symmetry reduction that changes "verified" answers is worse than
//! useless, so these tests check the algebra the quotient rests on, for
//! random reachable configurations of the paper's algorithms:
//!
//! * **orbit invariance** — the canonical state key is invariant under
//!   permutations within input-equal orbit groups (any permutation at all
//!   for the anonymous algorithm), applied consistently through automaton
//!   states, pending ops, shared-memory values and decisions;
//! * **separation** — for the id-carrying algorithms, permutations across
//!   groups with unequal inputs *change* the key (no accidental merging);
//! * **idempotence** — canonicalization is a projection: canonicalizing a
//!   canonical configuration is the identity;
//! * **commutation** — stepping commutes with relabeling
//!   (`σ·step(s, p) == step(σ·s, σ(p))`), the transition-system
//!   automorphism property the pruning argument needs;
//! * **witness replay** — on deliberately under-provisioned cells, every
//!   violation reported by either explorer, with symmetry on or off,
//!   replays through a fresh `Executor` to an actual safety violation in
//!   original (un-relabeled) process ids.

use proptest::prelude::*;
use set_agreement::algorithms::{AnonymousSetAgreement, OneShotSetAgreement, RepeatedSetAgreement};
use set_agreement::model::{Automaton, IdRelabeling, Params, ProcessId};
use set_agreement::runtime::{
    agreement_predicate, canonical_state_key, explore, parallel_explore, state_key,
    Executor as StepExecutor, Exploration, ExploreConfig, ParallelExploreConfig, SymmetryMode,
    SymmetryPlan, Workload,
};
use std::fmt::Debug;
use std::hash::Hash;

/// A tiny deterministic RNG so strategies stay cheap.
fn next(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

/// Drives `executor` through `steps` pseudo-random runnable steps.
fn randomize<A>(executor: &mut StepExecutor<A>, steps: u64, seed: &mut u64)
where
    A: Automaton,
    A::Value: Clone + Eq + Debug,
{
    for _ in 0..steps {
        let runnable = executor.runnable();
        if runnable.is_empty() {
            break;
        }
        let pick = runnable[(next(seed) % runnable.len() as u64) as usize];
        executor.step(pick);
    }
}

/// A pseudo-random permutation of `0..n` that only moves slots within the
/// given equivalence classes (`class[p] == class[q]` required to exchange
/// `p` and `q`), built from random in-class transpositions.
fn in_class_permutation(class: &[usize], seed: &mut u64) -> IdRelabeling {
    let n = class.len();
    let mut map: Vec<ProcessId> = ProcessId::all(n).collect();
    for _ in 0..2 * n {
        let a = (next(seed) % n as u64) as usize;
        let b = (next(seed) % n as u64) as usize;
        if class[a] == class[b] {
            map.swap(a, b);
        }
    }
    IdRelabeling::from_map(map)
}

/// Input-equality classes of a workload (the orbit groups of the
/// id-carrying algorithms).
fn input_classes(workload: &Workload) -> Vec<usize> {
    let mut seen: Vec<&[u64]> = Vec::new();
    (0..workload.processes())
        .map(|p| {
            let sequence = workload.sequence(p);
            seen.iter().position(|s| *s == sequence).unwrap_or_else(|| {
                seen.push(sequence);
                seen.len() - 1
            })
        })
        .collect()
}

/// Checks the invariance / idempotence / commutation bundle on one
/// reachable configuration. `plan` must have been built from the system's
/// *initial* configuration — orbit groups are "processes with identical
/// inputs", exactly as the explorers construct it.
fn check_orbit_algebra<A>(
    executor: &StepExecutor<A>,
    plan: &SymmetryPlan,
    sigma: &IdRelabeling,
    seed: &mut u64,
) where
    A: Automaton + Clone + Hash,
    A::Value: Clone + Eq + Debug + Hash,
{
    assert!(plan.applied(), "these automata opt into symmetry");

    // Invariance: the permuted configuration canonicalizes to the same key
    // and the same orbit weight.
    let permuted = executor.permuted(sigma);
    assert_eq!(
        canonical_state_key(executor, plan),
        canonical_state_key(&permuted, plan),
        "canonical keys must be invariant under in-orbit permutations"
    );

    // Idempotence: canonicalization projects onto canonical forms.
    let canonical = executor.permuted(&plan.canonical_relabeling(executor));
    assert!(
        plan.canonical_relabeling(&canonical).is_identity(),
        "canonicalizing a canonical configuration must be the identity"
    );
    assert_eq!(
        canonical_state_key(&canonical, plan).0,
        canonical_state_key(executor, plan).0,
        "the canonical form must carry the canonical key"
    );

    // Commutation: σ·step(s, p) == step(σ·s, σ(p)) as raw states.
    let runnable = executor.runnable();
    if !runnable.is_empty() {
        let p = runnable[(next(seed) % runnable.len() as u64) as usize];
        let mut stepped_then_permuted = executor.clone();
        stepped_then_permuted.step(p);
        let stepped_then_permuted = stepped_then_permuted.permuted(sigma);
        let mut permuted_then_stepped = permuted;
        permuted_then_stepped.step(sigma.apply(p));
        assert_eq!(
            state_key(&stepped_then_permuted),
            state_key(&permuted_then_stepped),
            "stepping must commute with relabeling"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn oneshot_canonical_keys_are_orbit_invariant(
        n in 2usize..=4,
        universe in 1u64..4,
        workload_seed in any::<u64>(),
        schedule in 0u64..24,
        case_seed in any::<u64>(),
    ) {
        let params = Params::new(n, 1, n - 1).expect("n >= 2 makes (n, 1, n-1) valid");
        // A small universe forces duplicate inputs, so orbit groups are
        // non-trivial and the permutations actually move slots.
        let workload = Workload::random(n, 1, universe, workload_seed);
        let mut executor = StepExecutor::new(
            (0..n)
                .map(|p| OneShotSetAgreement::new(params, ProcessId(p), workload.input(p, 1)))
                .collect::<Vec<_>>(),
        );
        let plan = SymmetryPlan::for_executor(&executor, SymmetryMode::ProcessIds);
        let mut seed = case_seed | 1;
        randomize(&mut executor, schedule, &mut seed);
        let sigma = in_class_permutation(&input_classes(&workload), &mut seed);
        check_orbit_algebra(&executor, &plan, &sigma, &mut seed);
    }

    #[test]
    fn repeated_canonical_keys_are_orbit_invariant(
        n in 2usize..=3,
        universe in 1u64..3,
        workload_seed in any::<u64>(),
        schedule in 0u64..30,
        case_seed in any::<u64>(),
    ) {
        let params = Params::new(n, 1, n.max(2) - 1).expect("valid triple");
        let workload = Workload::random(n, 2, universe, workload_seed);
        let mut executor = StepExecutor::new(
            (0..n)
                .map(|p| {
                    RepeatedSetAgreement::new(params, ProcessId(p), workload.sequence(p).to_vec())
                        .expect("two inputs are never empty")
                })
                .collect::<Vec<_>>(),
        );
        let plan = SymmetryPlan::for_executor(&executor, SymmetryMode::ProcessIds);
        let mut seed = case_seed | 1;
        randomize(&mut executor, schedule, &mut seed);
        let sigma = in_class_permutation(&input_classes(&workload), &mut seed);
        check_orbit_algebra(&executor, &plan, &sigma, &mut seed);
    }

    #[test]
    fn anonymous_canonical_keys_are_invariant_under_any_permutation(
        n in 2usize..=4,
        distinct in any::<bool>(),
        schedule in 0u64..24,
        case_seed in any::<u64>(),
    ) {
        let params = Params::new(n, 1, n - 1).expect("valid triple");
        // Full-group permutation: even with all-distinct inputs, ANY
        // permutation of the slots preserves the canonical key.
        let workload = if distinct {
            Workload::all_distinct(n, 1)
        } else {
            Workload::uniform(n, 1, 9)
        };
        let mut executor = StepExecutor::new(
            (0..n)
                .map(|p| AnonymousSetAgreement::one_shot(params, workload.input(p, 1)))
                .collect::<Vec<_>>(),
        );
        let plan = SymmetryPlan::for_executor(&executor, SymmetryMode::ProcessIds);
        let mut seed = case_seed | 1;
        randomize(&mut executor, schedule, &mut seed);
        let sigma = in_class_permutation(&vec![0usize; n], &mut seed);
        check_orbit_algebra(&executor, &plan, &sigma, &mut seed);
    }

    #[test]
    fn cross_group_permutations_change_id_carrying_keys(
        n in 2usize..=4,
        schedule in 0u64..24,
        case_seed in any::<u64>(),
    ) {
        // All-distinct inputs: every orbit group is a singleton, so any
        // transposition crosses groups and must CHANGE the canonical key —
        // non-anonymous processes are identified with their inputs, and
        // merging across them would be unsound.
        let params = Params::new(n, 1, n - 1).expect("valid triple");
        let workload = Workload::all_distinct(n, 1);
        let mut executor = StepExecutor::new(
            (0..n)
                .map(|p| OneShotSetAgreement::new(params, ProcessId(p), workload.input(p, 1)))
                .collect::<Vec<_>>(),
        );
        let plan = SymmetryPlan::for_executor(&executor, SymmetryMode::ProcessIds);
        let mut seed = case_seed | 1;
        randomize(&mut executor, schedule, &mut seed);
        prop_assert!(plan.applied());
        let a = ProcessId((next(&mut seed) % n as u64) as usize);
        let b = ProcessId(((a.index() as u64 + 1 + next(&mut seed) % (n as u64 - 1))
            % n as u64) as usize);
        prop_assert_ne!(a, b);
        let swapped = executor.permuted(&IdRelabeling::swap(n, a, b));
        prop_assert_ne!(
            canonical_state_key(&executor, &plan).0,
            canonical_state_key(&swapped, &plan).0,
            "slots with unequal inputs must never share a canonical key"
        );
    }
}

/// Every violation an explorer reports must replay: stepping the witness
/// schedule on a fresh executor reproduces an actual violation.
fn assert_witness_replays<A, B>(result: &Exploration, fresh: B, cell: &str)
where
    A: Automaton + Clone + Hash,
    A::Value: Clone + Eq + Debug + Hash,
    B: Fn() -> StepExecutor<A>,
{
    let violation = result
        .violation
        .as_ref()
        .unwrap_or_else(|| panic!("{cell}: an under-provisioned cell must violate"));
    let mut replay = fresh();
    for &process in &violation.schedule {
        assert!(
            replay.step(process).is_some(),
            "{cell}: witness schedules use original process ids and must be steppable"
        );
    }
    let reproduced = agreement_predicate(1)(&replay);
    assert!(
        reproduced.is_some(),
        "{cell}: replaying the witness must reproduce the violation"
    );
    assert_eq!(
        reproduced.as_deref(),
        Some(violation.description.as_str()),
        "{cell}: the description must match the replayed configuration"
    );
}

#[test]
fn witnesses_replay_with_symmetry_on_and_off() {
    let params = Params::new(3, 1, 1).unwrap();

    // Figure 3 stripped to one component: 1-agreement is violated. Mixed
    // inputs keep one non-trivial orbit group (p1 and p2 share value 20).
    let oneshot = || {
        StepExecutor::new(
            (0..3)
                .map(|p| {
                    let input = if p == 0 { 10 } else { 20 };
                    OneShotSetAgreement::deficient(params, ProcessId(p), input, 1).unwrap()
                })
                .collect::<Vec<_>>(),
        )
    };
    // Figure 5 stripped to one component, distinct inputs: the anonymous
    // quotient merges across inputs, and its witnesses must still replay.
    let anonymous = || {
        StepExecutor::new(
            (0..3)
                .map(|p| AnonymousSetAgreement::deficient(params, vec![10 + p], 1).unwrap())
                .collect::<Vec<_>>(),
        )
    };

    for symmetry in [SymmetryMode::Off, SymmetryMode::ProcessIds] {
        let serial = ExploreConfig {
            max_depth: 10_000,
            max_states: 500_000,
            dedup: true,
            symmetry,
            ..ExploreConfig::default()
        };
        let result = explore(&oneshot(), serial, agreement_predicate(1));
        assert_eq!(
            result.symmetry_applied,
            symmetry == SymmetryMode::ProcessIds
        );
        assert_witness_replays(&result, oneshot, &format!("oneshot serial {symmetry:?}"));
        let result = explore(&anonymous(), serial, agreement_predicate(1));
        assert_witness_replays(&result, anonymous, &format!("anon serial {symmetry:?}"));

        for threads in [1, 2, 8] {
            let parallel = ParallelExploreConfig {
                threads,
                max_depth: 10_000,
                max_states: 500_000,
                symmetry,
                ..ParallelExploreConfig::default()
            };
            let result = parallel_explore(&oneshot(), parallel, agreement_predicate(1));
            assert_witness_replays(
                &result,
                oneshot,
                &format!("oneshot parallel x{threads} {symmetry:?}"),
            );
            let result = parallel_explore(&anonymous(), parallel, agreement_predicate(1));
            assert_witness_replays(
                &result,
                anonymous,
                &format!("anon parallel x{threads} {symmetry:?}"),
            );
        }
    }
}

#[test]
fn opaque_systems_fall_back_instead_of_pruning() {
    use set_agreement::algorithms::SwmrEmulated;
    // The single-writer emulation addresses registers BY process id, so it
    // must refuse symmetry (fall back) — pruning would be unsound.
    let params = Params::new(2, 1, 1).unwrap();
    let executor = StepExecutor::new(
        (0..2)
            .map(|p| {
                SwmrEmulated::<OneShotSetAgreement>::one_shot(params, ProcessId(p), 10 + p as u64)
            })
            .collect::<Vec<_>>(),
    );
    let plan = SymmetryPlan::for_executor(&executor, SymmetryMode::ProcessIds);
    assert!(
        !plan.applied(),
        "id-addressed memory cannot establish symmetry"
    );
    let config = ExploreConfig {
        max_depth: 200,
        max_states: 20_000,
        dedup: true,
        symmetry: SymmetryMode::ProcessIds,
        ..ExploreConfig::default()
    };
    let requested = explore(&executor, config, agreement_predicate(1));
    let plain = explore(
        &executor,
        ExploreConfig {
            symmetry: SymmetryMode::Off,
            ..config
        },
        agreement_predicate(1),
    );
    assert!(!requested.symmetry_applied);
    assert_eq!(requested.states_visited, plain.states_visited);
    assert_eq!(requested.truncated, plain.truncated);
    assert_eq!(requested.violation, plain.violation);
}
