//! Serial-vs-parallel explorer equivalence suite.
//!
//! For every (cell, algorithm) of `campaigns/exhaustive.spec`, the serial
//! depth-first explorer and the work-stealing parallel explorer must agree
//! on everything a verification claim rests on: `states_visited` (the two
//! seen-sets share the same 128-bit state keys, so an exhausted search
//! counts the identical state set), `verified`, and the violating schedule
//! (`None` for these verified cells). The parallel explorer must addition-
//! ally be self-consistent at 1, 2 and 8 worker threads — its results are
//! byte-identical at any thread count.
//!
//! The 3/1/2 cells have a few hundred thousand states each, which is minutes
//! of work without optimization, so debug builds cover the n = 2 cells only;
//! `cargo test --release --test explorer_equivalence` (run in CI) covers
//! every cell of the spec.

use sa_sweep::{expand, CampaignMode, CampaignSpec, ScenarioSpec};
use set_agreement::runtime::{ExploreConfig, ParallelExploreConfig};
use set_agreement::{Backend, ExecutionPlan, Executor, ExploreReport};

fn spec_scenarios() -> Vec<ScenarioSpec> {
    let text = std::fs::read_to_string("campaigns/exhaustive.spec")
        .expect("campaigns/exhaustive.spec is checked in");
    let spec = CampaignSpec::parse(&text).expect("the checked-in spec parses");
    assert_eq!(spec.mode, CampaignMode::Explore);
    let (scenarios, _) = expand(&spec);
    assert!(!scenarios.is_empty());
    scenarios
}

fn explore_with(scenario: &ScenarioSpec, backend: Backend) -> ExploreReport {
    let plan = ExecutionPlan::new(scenario.params)
        .algorithm(scenario.algorithm)
        .workload(scenario.workload.clone());
    Executor::new(backend).execute(&plan).expect_explored()
}

#[test]
fn serial_and_parallel_explorers_agree_on_every_spec_cell() {
    // Debug builds are ~20x slower than release; keep tier-1 fast by
    // restricting them to the n = 2 cells. Release runs (CI) cover all.
    let full = !cfg!(debug_assertions);
    let mut covered = 0;
    for scenario in spec_scenarios() {
        if !full && scenario.params.n() > 2 {
            continue;
        }
        covered += 1;
        let cell = format!(
            "{}/{}/{} {}",
            scenario.params.n(),
            scenario.params.m(),
            scenario.params.k(),
            scenario.algorithm.label()
        );
        let serial = explore_with(
            &scenario,
            Backend::Explore(ExploreConfig {
                max_depth: scenario.max_steps,
                max_states: scenario.max_states,
                dedup: true,
            }),
        );
        assert!(serial.verified(), "{cell}: serial exploration not verified");
        let mut previous: Option<ExploreReport> = None;
        for threads in [1, 2, 8] {
            let parallel = explore_with(
                &scenario,
                Backend::ParallelExplore(ParallelExploreConfig {
                    threads,
                    max_depth: scenario.max_steps,
                    max_states: scenario.max_states,
                }),
            );
            assert_eq!(
                parallel.states_visited, serial.states_visited,
                "{cell} at {threads} threads: states_visited diverged"
            );
            assert_eq!(
                parallel.verified(),
                serial.verified(),
                "{cell} at {threads} threads: verified diverged"
            );
            assert_eq!(
                parallel.violation, serial.violation,
                "{cell} at {threads} threads: violating schedule diverged"
            );
            assert_eq!(parallel.validity_ok, serial.validity_ok, "{cell}");
            assert_eq!(parallel.agreement_ok, serial.agreement_ok, "{cell}");
            assert_eq!(
                parallel.max_locations_written, serial.max_locations_written,
                "{cell}: space maxima range over the same state set"
            );
            if let Some(previous) = &previous {
                // Parallel-vs-parallel: every field is thread-count
                // invariant, including the ones serial DFS measures
                // differently (depth, frontier, memory estimate).
                assert_eq!(parallel.paths, previous.paths, "{cell}");
                assert_eq!(
                    parallel.max_depth_reached, previous.max_depth_reached,
                    "{cell}"
                );
                assert_eq!(parallel.frontier_peak, previous.frontier_peak, "{cell}");
                assert_eq!(parallel.seen_entries, previous.seen_entries, "{cell}");
                assert_eq!(parallel.approx_bytes, previous.approx_bytes, "{cell}");
            }
            previous = Some(parallel);
        }
    }
    assert!(covered > 0, "the spec filter left nothing to check");
}

#[test]
fn parallel_explorer_finds_violations_deterministically() {
    // A deliberately under-provisioned cell (snapshot stripped to one
    // component) has reachable k-agreement violations; the parallel
    // explorer must report the same breadth-first-minimal witness at any
    // thread count.
    use set_agreement::algorithms::OneShotSetAgreement;
    use set_agreement::model::{Params, ProcessId};
    use set_agreement::runtime::{agreement_predicate, parallel_explore, Executor as StepExecutor};

    let params = Params::new(2, 1, 1).unwrap();
    let automata: Vec<_> = (0..2)
        .map(|p| OneShotSetAgreement::deficient(params, ProcessId(p), 10 + p as u64, 1).unwrap())
        .collect();
    let executor = StepExecutor::new(automata);
    let reference = parallel_explore(
        &executor,
        ParallelExploreConfig::with_threads(1),
        agreement_predicate(1),
    );
    let witness = reference
        .violation
        .as_ref()
        .expect("a violation must be reachable at width 1");
    assert!(!witness.schedule.is_empty());
    for threads in [2, 8] {
        let other = parallel_explore(
            &executor,
            ParallelExploreConfig::with_threads(threads),
            agreement_predicate(1),
        );
        assert_eq!(other.violation, reference.violation);
        assert_eq!(other.states_visited, reference.states_visited);
    }
}
