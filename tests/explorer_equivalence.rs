//! Serial-vs-parallel explorer equivalence suite.
//!
//! For every (cell, algorithm) of `campaigns/exhaustive.spec`, the serial
//! depth-first explorer and the work-stealing parallel explorer must agree
//! on everything a verification claim rests on: `states_visited` (the two
//! seen-sets share the same 128-bit state keys, so an exhausted search
//! counts the identical state set), `verified`, and the violating schedule
//! (`None` for these verified cells). The parallel explorer must addition-
//! ally be self-consistent at 1, 2 and 8 worker threads — its results are
//! byte-identical at any thread count.
//!
//! The 3/1/2 cells have a few hundred thousand states each, which is minutes
//! of work without optimization, so debug builds cover the n = 2 cells only;
//! `cargo test --release --test explorer_equivalence` (run in CI) covers
//! every cell of the spec.

use sa_sweep::{expand, CampaignMode, CampaignSpec, ScenarioSpec};
use set_agreement::runtime::{ExploreConfig, ParallelExploreConfig};
use set_agreement::{Backend, ExecutionPlan, Executor, ExploreReport};

fn spec_scenarios() -> Vec<ScenarioSpec> {
    let text = std::fs::read_to_string("campaigns/exhaustive.spec")
        .expect("campaigns/exhaustive.spec is checked in");
    let spec = CampaignSpec::parse(&text).expect("the checked-in spec parses");
    assert_eq!(spec.mode, CampaignMode::Explore);
    let (scenarios, _) = expand(&spec);
    assert!(!scenarios.is_empty());
    scenarios
}

fn explore_with(scenario: &ScenarioSpec, backend: Backend) -> ExploreReport {
    let plan = ExecutionPlan::new(scenario.params)
        .algorithm(scenario.algorithm)
        .workload(scenario.workload.clone());
    Executor::new(backend).execute(&plan).expect_explored()
}

#[test]
fn serial_and_parallel_explorers_agree_on_every_spec_cell() {
    // Debug builds are ~20x slower than release; keep tier-1 fast by
    // restricting them to the n = 2 cells. Release runs (CI) cover all.
    let full = !cfg!(debug_assertions);
    let mut covered = 0;
    for scenario in spec_scenarios() {
        if !full && scenario.params.n() > 2 {
            continue;
        }
        covered += 1;
        let cell = format!(
            "{}/{}/{} {}",
            scenario.params.n(),
            scenario.params.m(),
            scenario.params.k(),
            scenario.algorithm.label()
        );
        let serial = explore_with(
            &scenario,
            Backend::Explore(ExploreConfig {
                max_depth: scenario.max_steps,
                max_states: scenario.max_states,
                dedup: true,
                ..ExploreConfig::default()
            }),
        );
        assert!(serial.verified(), "{cell}: serial exploration not verified");
        let mut previous: Option<ExploreReport> = None;
        for threads in [1, 2, 8] {
            let parallel = explore_with(
                &scenario,
                Backend::ParallelExplore(ParallelExploreConfig {
                    threads,
                    max_depth: scenario.max_steps,
                    max_states: scenario.max_states,
                    ..ParallelExploreConfig::default()
                }),
            );
            assert_eq!(
                parallel.states_visited, serial.states_visited,
                "{cell} at {threads} threads: states_visited diverged"
            );
            assert_eq!(
                parallel.verified(),
                serial.verified(),
                "{cell} at {threads} threads: verified diverged"
            );
            assert_eq!(
                parallel.violation, serial.violation,
                "{cell} at {threads} threads: violating schedule diverged"
            );
            assert_eq!(parallel.validity_ok, serial.validity_ok, "{cell}");
            assert_eq!(parallel.agreement_ok, serial.agreement_ok, "{cell}");
            assert_eq!(
                parallel.max_locations_written, serial.max_locations_written,
                "{cell}: space maxima range over the same state set"
            );
            if let Some(previous) = &previous {
                // Parallel-vs-parallel: every field is thread-count
                // invariant, including the ones serial DFS measures
                // differently (depth, frontier, memory estimate).
                assert_eq!(parallel.paths, previous.paths, "{cell}");
                assert_eq!(
                    parallel.max_depth_reached, previous.max_depth_reached,
                    "{cell}"
                );
                assert_eq!(parallel.frontier_peak, previous.frontier_peak, "{cell}");
                assert_eq!(parallel.seen_entries, previous.seen_entries, "{cell}");
                assert_eq!(parallel.approx_bytes, previous.approx_bytes, "{cell}");
            }
            previous = Some(parallel);
        }
    }
    assert!(covered > 0, "the spec filter left nothing to check");
}

/// The symmetry-equivalence matrix: for every (cell, algorithm) of
/// `campaigns/exhaustive.spec`, symmetry-on and symmetry-off exploration
/// (serial and parallel at 1, 2 and 8 threads) must report identical
/// `verified`/`violation` verdicts — the quotient may only shrink the
/// search, never change its answer. The reduction itself is pinned exactly:
/// `orbit_states ≤ states_visited`, with equality exactly when all inputs
/// are distinct and the algorithm is non-anonymous (a non-anonymous process
/// is identified with its input, so distinct-input slots never merge, while
/// anonymous processes that converge become interchangeable).
#[test]
fn symmetry_quotient_preserves_verdicts_on_every_spec_cell() {
    use set_agreement::runtime::SymmetryMode;
    use set_agreement::Algorithm;
    let full = !cfg!(debug_assertions);
    let mut covered = 0;
    let mut reduced_cells = 0;
    for scenario in spec_scenarios() {
        if !full && scenario.params.n() > 2 {
            continue;
        }
        covered += 1;
        let cell = format!(
            "{}/{}/{} {}",
            scenario.params.n(),
            scenario.params.m(),
            scenario.params.k(),
            scenario.algorithm.label()
        );
        let serial = |symmetry| {
            Backend::Explore(ExploreConfig {
                max_depth: scenario.max_steps,
                max_states: scenario.max_states,
                dedup: true,
                symmetry,
                ..ExploreConfig::default()
            })
        };
        let off = explore_with(&scenario, serial(SymmetryMode::Off));
        let sym = explore_with(&scenario, serial(SymmetryMode::ProcessIds));
        assert!(
            sym.symmetry_applied,
            "{cell}: the paper's algorithms opt in"
        );
        assert!(!off.symmetry_applied, "{cell}");
        assert_eq!(sym.verified(), off.verified(), "{cell}: verdict changed");
        assert_eq!(sym.violation, off.violation, "{cell}: violation changed");
        assert_eq!(sym.validity_ok, off.validity_ok, "{cell}");
        assert_eq!(sym.agreement_ok, off.agreement_ok, "{cell}");
        assert_eq!(
            sym.max_locations_written, off.max_locations_written,
            "{cell}: space maxima are orbit-invariant"
        );
        assert_eq!(sym.orbit_states, sym.states_visited, "{cell}");
        assert!(
            sym.orbit_states <= off.states_visited,
            "{cell}: a quotient cannot be larger than the full space"
        );
        assert!(
            sym.full_states_lower_bound <= off.states_visited,
            "{cell}: the lower bound must not exceed the true count"
        );
        assert!(sym.full_states_lower_bound >= sym.orbit_states, "{cell}");
        // exhaustive.spec uses the all-distinct workload, so equality holds
        // exactly for the non-anonymous algorithm.
        let anonymous = matches!(
            scenario.algorithm,
            Algorithm::AnonymousOneShot | Algorithm::AnonymousRepeated(_)
        );
        if anonymous {
            assert!(
                sym.orbit_states < off.states_visited,
                "{cell}: anonymous cells must genuinely reduce \
                 ({} !< {})",
                sym.orbit_states,
                off.states_visited
            );
            reduced_cells += 1;
        } else {
            assert_eq!(
                sym.orbit_states, off.states_visited,
                "{cell}: distinct-input non-anonymous slots must never merge"
            );
        }
        // The parallel explorer computes the identical quotient at any
        // worker count.
        for threads in [1, 2, 8] {
            let parallel = explore_with(
                &scenario,
                Backend::ParallelExplore(ParallelExploreConfig {
                    threads,
                    max_depth: scenario.max_steps,
                    max_states: scenario.max_states,
                    symmetry: SymmetryMode::ProcessIds,
                    ..ParallelExploreConfig::default()
                }),
            );
            assert!(parallel.symmetry_applied, "{cell} x{threads}");
            assert_eq!(
                parallel.states_visited, sym.states_visited,
                "{cell} x{threads}: quotient size diverged"
            );
            assert_eq!(parallel.verified(), sym.verified(), "{cell} x{threads}");
            assert_eq!(parallel.violation, sym.violation, "{cell} x{threads}");
            assert_eq!(
                parallel.full_states_lower_bound, sym.full_states_lower_bound,
                "{cell} x{threads}: orbit statistics diverged"
            );
        }
    }
    assert!(covered > 0, "the spec filter left nothing to check");
    assert!(
        reduced_cells > 0,
        "no anonymous cell exercised the reduction"
    );
}

/// Uniform workloads make the non-anonymous orbit groups non-trivial: all
/// processes propose the same value, so every slot is interchangeable under
/// consistent id relabeling and Figure 3 must reduce too — with identical
/// verdicts, mirroring the distinct-workload matrix above.
#[test]
fn uniform_workloads_reduce_id_carrying_cells_too() {
    use set_agreement::model::Params;
    use set_agreement::runtime::{SymmetryMode, Workload};
    use set_agreement::Algorithm;
    let cells: &[(usize, usize, usize)] = if cfg!(debug_assertions) {
        &[(2, 1, 1)]
    } else {
        &[(2, 1, 1), (3, 1, 2)]
    };
    for &(n, m, k) in cells {
        let params = Params::new(n, m, k).unwrap();
        let plan = ExecutionPlan::new(params)
            .algorithm(Algorithm::OneShot)
            .workload(Workload::uniform(n, 1, 7));
        let explore = |symmetry| {
            Executor::new(Backend::Explore(ExploreConfig {
                max_depth: 100_000,
                max_states: 1_000_000,
                dedup: true,
                symmetry,
                ..ExploreConfig::default()
            }))
            .execute(&plan)
            .expect_explored()
        };
        let off = explore(SymmetryMode::Off);
        let sym = explore(SymmetryMode::ProcessIds);
        let cell = format!("{n}/{m}/{k} uniform");
        assert!(off.verified() && sym.verified(), "{cell}");
        assert!(sym.symmetry_applied, "{cell}");
        assert!(
            sym.orbit_states < off.states_visited,
            "{cell}: equal-input id-carrying slots must merge ({} !< {})",
            sym.orbit_states,
            off.states_visited
        );
        // Equal-input orbits are fully reachable, so the lower bound
        // recovers the full count exactly here.
        assert_eq!(sym.full_states_lower_bound, off.states_visited, "{cell}");
    }
}

#[test]
fn parallel_explorer_finds_violations_deterministically() {
    // A deliberately under-provisioned cell (snapshot stripped to one
    // component) has reachable k-agreement violations; the parallel
    // explorer must report the same breadth-first-minimal witness at any
    // thread count.
    use set_agreement::algorithms::OneShotSetAgreement;
    use set_agreement::model::{Params, ProcessId};
    use set_agreement::runtime::{agreement_predicate, parallel_explore, Executor as StepExecutor};

    let params = Params::new(2, 1, 1).unwrap();
    let automata: Vec<_> = (0..2)
        .map(|p| OneShotSetAgreement::deficient(params, ProcessId(p), 10 + p as u64, 1).unwrap())
        .collect();
    let executor = StepExecutor::new(automata);
    let reference = parallel_explore(
        &executor,
        ParallelExploreConfig::with_threads(1),
        agreement_predicate(1),
    );
    let witness = reference
        .violation
        .as_ref()
        .expect("a violation must be reachable at width 1");
    assert!(!witness.schedule.is_empty());
    for threads in [2, 8] {
        let other = parallel_explore(
            &executor,
            ParallelExploreConfig::with_threads(threads),
            agreement_predicate(1),
        );
        assert_eq!(other.violation, reference.violation);
        assert_eq!(other.states_visited, reference.states_visited);
    }
}
