//! Integration tests for the m-obstruction-freedom progress condition: every
//! process that keeps taking steps must finish all its `Propose` operations
//! whenever at most `m` processes keep taking steps.

use set_agreement::model::{Params, ProcessId};
use set_agreement::runtime::{check_obstruction_termination, Workload};
use set_agreement::{Adversary, Algorithm, Scenario};

#[test]
fn survivors_up_to_m_always_decide_one_shot() {
    for (n, m, k) in [(4, 1, 2), (5, 2, 3), (6, 2, 2), (6, 3, 3), (7, 3, 5)] {
        let params = Params::new(n, m, k).unwrap();
        for survivors in 1..=m {
            let report = Scenario::new(params)
                .algorithm(Algorithm::OneShot)
                .adversary(Adversary::Obstruction {
                    contention_steps: 40 * n as u64,
                    survivors,
                    seed: 1000 + survivors as u64,
                })
                .max_steps(3_000_000)
                .run();
            assert!(
                report.survivors_decided,
                "one-shot: {survivors} survivors did not decide for n={n} m={m} k={k}"
            );
            assert!(report.safety.is_safe());
        }
    }
}

#[test]
fn survivors_up_to_m_always_decide_repeated() {
    for (n, m, k) in [(4, 1, 2), (5, 2, 3), (6, 2, 4)] {
        let params = Params::new(n, m, k).unwrap();
        let report = Scenario::new(params)
            .algorithm(Algorithm::Repeated(3))
            .adversary(Adversary::Obstruction {
                contention_steps: 60 * n as u64,
                survivors: m,
                seed: 77,
            })
            .max_steps(5_000_000)
            .run();
        assert!(
            report.survivors_decided,
            "repeated: survivors did not complete every instance for n={n} m={m} k={k}"
        );
        assert!(report.safety.is_safe());
        // Survivors completed all three instances, so decisions exist for each.
        for t in 1..=3 {
            assert!(
                report.decisions.deciders(t) >= 1,
                "no decision recorded for instance {t}"
            );
        }
    }
}

#[test]
fn survivors_up_to_m_always_decide_anonymous() {
    for (n, m, k) in [(4, 1, 2), (5, 2, 3), (6, 2, 3)] {
        let params = Params::new(n, m, k).unwrap();
        for algorithm in [Algorithm::AnonymousOneShot, Algorithm::AnonymousRepeated(2)] {
            let report = Scenario::new(params)
                .algorithm(algorithm)
                .adversary(Adversary::Obstruction {
                    contention_steps: 60 * n as u64,
                    survivors: m,
                    seed: 31,
                })
                .max_steps(8_000_000)
                .run();
            assert!(
                report.survivors_decided,
                "{algorithm:?}: survivors starved for n={n} m={m} k={k}"
            );
            assert!(report.safety.is_safe());
        }
    }
}

#[test]
fn baselines_terminate_under_obstruction() {
    let params = Params::new(8, 1, 3).unwrap();
    for algorithm in [Algorithm::WideBaseline, Algorithm::FullInformation] {
        let report = Scenario::new(params)
            .algorithm(algorithm)
            .adversary(Adversary::Obstruction {
                contention_steps: 200,
                survivors: 1,
                seed: 4,
            })
            .max_steps(5_000_000)
            .run();
        assert!(report.survivors_decided, "{algorithm:?} starved");
        assert!(report.safety.is_safe());
    }
}

#[test]
fn solo_runs_decide_quickly_for_every_process() {
    let params = Params::new(5, 1, 2).unwrap();
    for p in 0..5 {
        let report = Scenario::new(params)
            .algorithm(Algorithm::OneShot)
            .adversary(Adversary::Solo { process: p })
            .max_steps(100_000)
            .run();
        assert!(report.survivors_decided, "solo process {p} did not decide");
        // A solo process must decide its own input (no other value is ever
        // visible).
        let decided = report
            .decisions
            .decision_of(ProcessId(p), 1)
            .expect("solo process decided");
        assert_eq!(decided, 1000 + p as u64);
        // A solo run of Figure 3 needs about r updates + r scans to fill the
        // object; allow generous slack but require it is not pathological.
        assert!(
            report.steps < 20 * (params.snapshot_components() as u64 + 2),
            "solo decision took {} steps",
            report.steps
        );
    }
}

#[test]
fn termination_checker_flags_starved_survivors() {
    // With more survivors than m, the progress condition no longer applies;
    // construct such a run and check the checker reports the starved ones
    // when asked about them (and nothing when asked about the empty set).
    let params = Params::new(4, 1, 1).unwrap();
    let report = Scenario::new(params)
        .algorithm(Algorithm::OneShot)
        .adversary(Adversary::RoundRobin)
        .max_steps(2_000)
        .run();
    let halted: Vec<bool> = (0..4)
        .map(|p| report.decisions.decision_of(ProcessId(p), 1).is_some())
        .collect();
    assert!(check_obstruction_termination(&[], &halted, 2_000).is_ok());
    if halted.iter().any(|h| !h) {
        let all: Vec<ProcessId> = (0..4).map(ProcessId).collect();
        assert!(check_obstruction_termination(&all, &halted, 2_000).is_err());
    }
}

#[test]
fn repeated_runs_make_progress_proportional_to_instances() {
    // More instances means more steps, but never fewer decisions.
    let params = Params::new(5, 1, 2).unwrap();
    let mut last_steps = 0;
    for instances in [1usize, 2, 4] {
        let report = Scenario::new(params)
            .algorithm(Algorithm::Repeated(instances))
            .workload(Workload::all_distinct(5, instances))
            .adversary(Adversary::Solo { process: 0 })
            .max_steps(5_000_000)
            .run();
        assert!(report.survivors_decided);
        assert_eq!(report.decisions.instances().count(), instances);
        assert!(
            report.steps >= last_steps,
            "steps decreased when instances increased"
        );
        last_steps = report.steps;
    }
}
